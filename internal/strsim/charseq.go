package strsim

// Rune-sequence variants of the character-level measures. The string
// API converts per call; pairwise kernels that compare one entity
// against many precompute the rune slices once and call these directly.
// DP working rows live on the stack for typical attribute-value lengths
// (≤ 64 runes), so a pair comparison allocates nothing.

// stackRows is the rune length up to which DP rows fit the stack
// buffers below.
const stackRows = 64

// LevenshteinSeq is Levenshtein over pre-converted rune slices.
func LevenshteinSeq(ra, rb []rune) float64 {
	return normDist(LevenshteinDistanceSeq(ra, rb), len(ra), len(rb))
}

// LevenshteinDistanceSeq is LevenshteinDistance over rune slices.
func LevenshteinDistanceSeq(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	var b1, b2 [stackRows + 1]int
	var prev, cur []int
	if len(rb) <= stackRows {
		prev, cur = b1[:len(rb)+1], b2[:len(rb)+1]
	} else {
		prev, cur = make([]int, len(rb)+1), make([]int, len(rb)+1)
	}
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshteinSeq is DamerauLevenshtein over rune slices.
func DamerauLevenshteinSeq(ra, rb []rune) float64 {
	return normDist(DamerauLevenshteinDistanceSeq(ra, rb), len(ra), len(rb))
}

// DamerauLevenshteinDistanceSeq is DamerauLevenshteinDistance over rune
// slices.
func DamerauLevenshteinDistanceSeq(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	width := len(rb) + 1
	var b1, b2, b3 [stackRows + 1]int
	var two, prev, cur []int
	if len(rb) <= stackRows {
		two, prev, cur = b1[:width], b2[:width], b3[:width]
	} else {
		two, prev, cur = make([]int, width), make([]int, width), make([]int, width)
	}
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if v := two[j-2] + 1; v < cur[j] {
					cur[j] = v
				}
			}
		}
		two, prev, cur = prev, cur, two
	}
	return prev[len(rb)]
}

// JaroSeq is Jaro over rune slices.
func JaroSeq(ra, rb []rune) float64 {
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	var ba, bb [stackRows]bool
	var matchA, matchB []bool
	if len(ra) <= stackRows && len(rb) <= stackRows {
		matchA, matchB = ba[:len(ra)], bb[:len(rb)]
	} else {
		matchA, matchB = make([]bool, len(ra)), make([]bool, len(rb))
	}
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// NeedlemanWunschSeq is NeedlemanWunsch over rune slices.
func NeedlemanWunschSeq(ra, rb []rune) float64 {
	maxLen := max2(len(ra), len(rb))
	if maxLen == 0 {
		return 1
	}
	// nwScore is the (non-positive) maximum alignment score; its negation
	// is the minimum alignment cost, which never exceeds 2*maxLen because
	// mismatching everything costs at most that. This is Simmetrics'
	// normalization: 1 - cost / (maxLen * |gap|).
	return 1 + nwScore(ra, rb)/(-nwGap*float64(maxLen))
}

func nwScore(ra, rb []rune) float64 {
	var b1, b2 [stackRows + 1]float64
	var prev, cur []float64
	if len(rb) <= stackRows {
		prev, cur = b1[:len(rb)+1], b2[:len(rb)+1]
	} else {
		prev, cur = make([]float64, len(rb)+1), make([]float64, len(rb)+1)
	}
	for j := 1; j <= len(rb); j++ {
		prev[j] = float64(j) * nwGap
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = float64(i) * nwGap
		for j := 1; j <= len(rb); j++ {
			sub := nwMismatch
			if ra[i-1] == rb[j-1] {
				sub = nwMatch
			}
			best := prev[j-1] + sub
			if v := prev[j] + nwGap; v > best {
				best = v
			}
			if v := cur[j-1] + nwGap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LongestCommonSubstringSeq is LongestCommonSubstring over rune slices.
func LongestCommonSubstringSeq(ra, rb []rune) float64 {
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	var b1, b2 [stackRows + 1]int
	var prev, cur []int
	if len(rb) <= stackRows {
		prev, cur = b1[:len(rb)+1], b2[:len(rb)+1]
	} else {
		prev, cur = make([]int, len(rb)+1), make([]int, len(rb)+1)
	}
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return float64(best) / float64(max2(len(ra), len(rb)))
}

// LongestCommonSubsequenceSeq is LongestCommonSubsequence over rune
// slices.
func LongestCommonSubsequenceSeq(ra, rb []rune) float64 {
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	var b1, b2 [stackRows + 1]int
	var prev, cur []int
	if len(rb) <= stackRows {
		prev, cur = b1[:len(rb)+1], b2[:len(rb)+1]
	} else {
		prev, cur = make([]int, len(rb)+1), make([]int, len(rb)+1)
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(rb)]) / float64(max2(len(ra), len(rb)))
}

// SmithWatermanSeq is SmithWaterman over rune slices.
func SmithWatermanSeq(ra, rb []rune) float64 {
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	var b1, b2 [stackRows + 1]float64
	var prev, cur []float64
	if len(rb) <= stackRows {
		prev, cur = b1[:len(rb)+1], b2[:len(rb)+1]
	} else {
		prev, cur = make([]float64, len(rb)+1), make([]float64, len(rb)+1)
	}
	best := 0.0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := swMismatch
			if ra[i-1] == rb[j-1] {
				sub = swMatch
			}
			v := prev[j-1] + sub
			if w := prev[j] + swGap; w > v {
				v = w
			}
			if w := cur[j-1] + swGap; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best / float64(min2(len(ra), len(rb))) / swMatch
}

// RunesAll converts each string to its rune slice, the precomputed form
// the *Seq measures consume.
func RunesAll(texts []string) [][]rune {
	out := make([][]rune, len(texts))
	for i, t := range texts {
		out[i] = []rune(t)
	}
	return out
}

// The scratch-fed variants below are the row-kernel forms of the
// measures that stay scalar: same cell-for-cell recurrences, but DP rows
// above the stack size come from a per-worker CharScratch instead of a
// fresh allocation, and the alignment scores accumulate in integers.
// Every Needleman-Wunsch and Smith-Waterman cell is an integer multiple
// of the score unit (1 for NW; ½ for SW, so cells are scaled by 2), all
// exactly representable, so integer max/clamp decisions and the final
// rescaled similarity are bit-identical to the float DPs above.

// JaroSeqScratch is JaroSeq with the match flags drawn from scratch when
// the strings exceed the stack buffers. scratch may be nil.
func JaroSeqScratch(ra, rb []rune, scratch *CharScratch) float64 {
	if len(ra) <= stackRows && len(rb) <= stackRows || scratch == nil {
		return JaroSeq(ra, rb)
	}
	if len(ra) == 0 || len(rb) == 0 {
		return JaroSeq(ra, rb)
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := scratch.flag(0, len(ra))
	matchB := scratch.flag(1, len(rb))
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// NeedlemanWunschSeqScratch is NeedlemanWunschSeq over integer rows
// (match 0, mismatch -1, gap -2 are all integral) from scratch.
func NeedlemanWunschSeqScratch(ra, rb []rune, scratch *CharScratch) float64 {
	maxLen := max2(len(ra), len(rb))
	if maxLen == 0 {
		return 1
	}
	score := nwScoreInt(ra, rb, scratch)
	return 1 + float64(score)/(-nwGap*float64(maxLen))
}

func nwScoreInt(ra, rb []rune, scratch *CharScratch) int {
	var b1, b2 [stackRows + 1]int
	var prev, cur []int
	switch {
	case len(rb) <= stackRows:
		prev, cur = b1[:len(rb)+1], b2[:len(rb)+1]
	case scratch != nil:
		prev, cur = scratch.row(0, len(rb)+1), scratch.row(1, len(rb)+1)
	default:
		prev, cur = make([]int, len(rb)+1), make([]int, len(rb)+1)
	}
	const gap, mismatch, match = -2, -1, 0
	prev[0] = 0
	for j := 1; j <= len(rb); j++ {
		prev[j] = j * gap
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i * gap
		for j := 1; j <= len(rb); j++ {
			sub := mismatch
			if ra[i-1] == rb[j-1] {
				sub = match
			}
			best := prev[j-1] + sub
			if v := prev[j] + gap; v > best {
				best = v
			}
			if v := cur[j-1] + gap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// SmithWatermanSeqScratch is SmithWatermanSeq over integer rows: cells
// are scaled by 2 so the gap penalty -0.5 becomes -1, and the best local
// score is halved back exactly at the end.
func SmithWatermanSeqScratch(ra, rb []rune, scratch *CharScratch) float64 {
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	var b1, b2 [stackRows + 1]int
	var prev, cur []int
	switch {
	case len(rb) <= stackRows:
		prev, cur = b1[:len(rb)+1], b2[:len(rb)+1]
	case scratch != nil:
		prev, cur = scratch.row(0, len(rb)+1), scratch.row(1, len(rb)+1)
	default:
		prev, cur = make([]int, len(rb)+1), make([]int, len(rb)+1)
	}
	const gap2, mismatch2, match2 = -1, -4, 2 // 2×(swGap, swMismatch, swMatch)
	for j := range prev {
		prev[j] = 0
	}
	best := 0
	for i := 1; i <= len(ra); i++ {
		cur[0] = 0
		for j := 1; j <= len(rb); j++ {
			sub := mismatch2
			if ra[i-1] == rb[j-1] {
				sub = match2
			}
			v := prev[j-1] + sub
			if w := prev[j] + gap2; w > v {
				v = w
			}
			if w := cur[j-1] + gap2; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return float64(best) / 2 / float64(min2(len(ra), len(rb))) / swMatch
}
