package strsim

// Bit-parallel kernels for the two character measures that stayed scalar
// after the Myers/Hyyrö/Allison-Dix rewrite: Needleman-Wunsch with the
// paper's scoring (match 0, mismatch -1, gap -2) and Jaro's windowed
// match scan. Both keep the scalar implementations in charseq.go as the
// pinned references (FuzzBitparVsScalar) and as the fallback for inputs
// longer than one machine word.
//
// Needleman-Wunsch. In cost form (substitution 1, gap 2) the DP
//
//	D(i,j) = min(D(i-1,j-1) + neq, D(i-1,j) + 2, D(i,j-1) + 2)
//
// has the diagonal property D(i-1,j-1) <= D(i,j) <= D(i-1,j-1)+1: the
// upper bound is the substitution edge, and the lower bound follows by
// induction because each of the three candidates dominates D(i-1,j-1)
// (e.g. D(i-1,j)+2 >= D(i-1,j-1) since inserting text[j] raises the cost
// of the (i-1,j-1) prefix by at most 2). So the diagonal step
// d(i,j) = D(i,j) - D(i-1,j-1) is a BIT, and it is 0 exactly when
//
//	pattern[i] == text[j]  OR  V(i,j-1) = -2  OR  H(i-1,j) = -2,
//
// with V(i,j) = D(i,j)-D(i-1,j) in [-2,2] and H(i,j) = D(i,j)-D(i,j-1)
// in [-2,2] (each candidate reaches -2 only when the corresponding
// neighbour already sits 2 below the diagonal origin). H(i-1,j) = -2
// unfolds to d(i-1,j)=0 AND V(i-1,j-1)=+2, which couples row i to row
// i-1 — a carry chain, solved in O(1) word operations per text rune by
// the same adder trick Myers uses. The remaining updates are pure
// relabelings of the one-hot encoded vertical differences:
//
//	H(i,j) = d(i,j) - V(i,j-1)        (same row, element-wise)
//	V(i,j) = d(i,j) - H(i-1,j)        (shift H up one row, boundary +2)
//
// and the running score D(m,j) accumulates H(m,j) read off the top bit.
//
// Jaro. The scalar scan assigns, for each pattern rune in order, the
// first not-yet-matched text position inside the window that holds an
// equal rune. With the text's PEQ table that assignment is one word
// operation: candidates = peq(c) & window & available, take the lowest
// set bit. The transposition count then walks the two match masks.

import "math/bits"

// nwScoreBitpar computes nwScoreInt (the integer Needleman-Wunsch
// alignment score, always <= 0) for a pattern of m <= 64 runes via the
// difference-encoded bit-parallel DP above, streaming the text through
// the pattern's PEQ table in O(|text|) word operations.
func nwScoreBitpar(peq *peqSingle, m int, text []rune) int {
	// One-hot vertical differences V(i, j-1) over pattern rows; rows are
	// bits 0..m-1, V = 0 is the implied complement. Bits >= m never
	// influence lower bits (shifts and adder carries only move upward),
	// so the vectors run at full word width like the Myers kernels.
	var vm2, vm1, vp1 uint64
	vp2 := ^uint64(0) // D(i,0) = 2i: the initial column's V is +2 everywhere
	top := uint64(1) << uint(m-1)
	dist := 2 * m // D(m, 0)
	for _, c := range text {
		eq := peq.eq(c)
		v0 := ^(vm2 | vm1 | vp1 | vp2)
		// d(i,j)=0 generate and propagate: G from an equal rune or
		// V(i,j-1)=-2; the H(i-1,j)=-2 condition propagates a zero from
		// row i-1 to row i wherever V(i-1,j-1)=+2.
		g := eq | vm2
		p := vp2 << 1
		t := (g << 1) & p
		z := (((t + p) ^ p) & p) | t | g
		d1 := ^z // rows where d(i,j) = 1
		// H(i,j) = d(i,j) - V(i,j-1), element-wise on the one-hot masks.
		// (d=1, V=-2) and (d=0 after H=-2 carry, V=...) combinations that
		// would leave [-2,2] are impossible: V=-2 forces d=0.
		hp2 := (d1 & vm1) | (z & vm2)
		hp1 := (d1 & v0) | (z & vm1)
		h0 := (d1 & vp1) | (z & v0)
		hm1 := (d1 & vp2) | (z & vp1)
		hm2 := z & vp2
		switch {
		case hp2&top != 0:
			dist += 2
		case hp1&top != 0:
			dist++
		case hm1&top != 0:
			dist--
		case hm2&top != 0:
			dist -= 2
		}
		// V(i,j) = d(i,j) - H(i-1,j): shift H up one row; the boundary
		// row contributes H(0,j) = +2 (the top row D(0,j) = 2j).
		shp2 := hp2<<1 | 1
		shp1 := hp1 << 1
		sh0 := h0 << 1
		shm1 := hm1 << 1
		shm2 := hm2 << 1
		vp2 = (d1 & shm1) | (z & shm2)
		vp1 = (d1 & sh0) | (z & shm1)
		vm1 = (d1 & shp2) | (z & shp1)
		vm2 = z & shp2
	}
	return -dist
}

// NeedlemanWunsch is NeedlemanWunschSeqScratch(p.Runes(), rb, scratch)
// through the bit-parallel kernel for patterns of <= 64 runes; longer
// patterns fall back to the scalar integer rows (like Damerau).
func (p *CharProfile) NeedlemanWunsch(rb []rune, scratch *CharScratch) float64 {
	m := len(p.runes)
	maxLen := max2(m, len(rb))
	if maxLen == 0 {
		return 1
	}
	var score int
	if p.peq1 != nil && len(rb) > 0 {
		score = nwScoreBitpar(p.peq1, m, rb)
	} else {
		score = nwScoreInt(p.runes, rb, scratch)
	}
	return 1 + float64(score)/(-nwGap*float64(maxLen))
}

// JaroTable is the PEQ match-bitmask table of the RIGHT side of a Jaro
// comparison (Jaro scans the left string and consumes positions of the
// right one, so the bit dimension is the right string). It is built once
// per entity and reused against every left string; nil peq means the
// string is longer than 64 runes and comparisons fall back to the scalar
// scan.
type JaroTable struct {
	peq *peqSingle
	n   int
}

// NewJaroTable builds the Jaro match table of rb.
func NewJaroTable(rb []rune) *JaroTable {
	t := &JaroTable{n: len(rb)}
	if len(rb) > 0 && len(rb) <= 64 {
		t.peq = newPeqSingle(rb)
	}
	return t
}

// JaroTableAll builds one table per rune sequence.
func JaroTableAll(seqs [][]rune) []*JaroTable {
	out := make([]*JaroTable, len(seqs))
	for i, rb := range seqs {
		out[i] = NewJaroTable(rb)
	}
	return out
}

// maskThrough returns the bits 0..k set (k >= 0; k >= 63 saturates to a
// full word).
func maskThrough(k int) uint64 {
	if k >= 63 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(k+1) - 1
}

// JaroSeqBitpar is JaroSeqScratch(ra, rb, scratch) with the windowed
// match scan replaced by one PEQ lookup per left rune when both strings
// fit a machine word. tb must be the table of rb; scratch backs the
// scalar fallback for longer inputs and may be nil.
func JaroSeqBitpar(ra, rb []rune, tb *JaroTable, scratch *CharScratch) float64 {
	if len(ra) == 0 || len(rb) == 0 || len(ra) > 64 || tb == nil || tb.peq == nil {
		return JaroSeqScratch(ra, rb, scratch)
	}
	n := len(rb)
	window := max2(len(ra), n)/2 - 1
	if window < 0 {
		window = 0
	}
	avail := maskThrough(n - 1)
	full := avail
	var matchedA uint64
	matches := 0
	for i, c := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window
		if hi > n-1 {
			hi = n - 1
		}
		if lo > hi {
			continue
		}
		span := maskThrough(hi)
		if lo > 0 {
			span &^= maskThrough(lo - 1)
		}
		// The scalar scan takes the FIRST unmatched equal position in the
		// window — the lowest set candidate bit.
		cand := tb.peq.eq(c) & span & avail
		if cand != 0 {
			avail &^= cand & -cand
			matchedA |= uint64(1) << uint(i)
			matches++
		}
	}
	if matches == 0 {
		return 0
	}
	matchedB := full &^ avail
	transpositions := 0
	mb := matchedB
	for ma := matchedA; ma != 0; ma &= ma - 1 {
		i := bits.TrailingZeros64(ma)
		j := bits.TrailingZeros64(mb)
		mb &= mb - 1
		if ra[i] != rb[j] {
			transpositions++
		}
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(n) + (m-t)/m) / 3
}
