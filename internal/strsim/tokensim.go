package strsim

import (
	"strings"
	"unicode"
)

// TokenFunc is a normalized similarity over token multisets.
type TokenFunc func(a, b []string) float64

// Tokenize splits s into lower-cased word tokens on any run of
// non-letter/non-digit characters.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// The string-slice token measures are thin wrappers over the profile
// implementations in profile.go: each builds the two TokenProfiles and
// delegates, producing bit-identical values to the historical
// map[string]int implementations (every accumulator is integer-valued,
// so the merge-join reorder is exact). Hot paths that compare one entity
// against many should build profiles once and use the profile methods
// (or TokenSims) directly.

// CosineTokens returns the cosine of the angle between the token count
// vectors of a and b.
func CosineTokens(a, b []string) float64 {
	return NewTokenProfile(a).Cosine(NewTokenProfile(b))
}

// BlockDistance returns the normalized L1 (Manhattan) similarity between
// the token count vectors: 1 - ||a-b||₁ / (|a|+|b|).
func BlockDistance(a, b []string) float64 {
	return NewTokenProfile(a).BlockDistance(NewTokenProfile(b))
}

// EuclideanTokens returns the normalized Euclidean similarity between the
// token count vectors: 1 - ||a-b||₂ / sqrt(||a||₂² + ||b||₂²).
func EuclideanTokens(a, b []string) float64 {
	return NewTokenProfile(a).Euclidean(NewTokenProfile(b))
}

// Jaccard returns |A∩B| / |A∪B| over token sets.
func Jaccard(a, b []string) float64 {
	return NewTokenProfile(a).Jaccard(NewTokenProfile(b))
}

// GeneralizedJaccard returns Σmin(count) / Σmax(count) over token
// multisets.
func GeneralizedJaccard(a, b []string) float64 {
	return NewTokenProfile(a).GeneralizedJaccard(NewTokenProfile(b))
}

// Dice returns 2|A∩B| / (|A|+|B|) over token sets.
func Dice(a, b []string) float64 {
	return NewTokenProfile(a).Dice(NewTokenProfile(b))
}

// SimonWhite is Dice over multisets: 2·Σmin(count) / (|a|+|b|).
func SimonWhite(a, b []string) float64 {
	return NewTokenProfile(a).SimonWhite(NewTokenProfile(b))
}

// OverlapCoefficient returns |A∩B| / min(|A|,|B|) over token sets.
func OverlapCoefficient(a, b []string) float64 {
	return NewTokenProfile(a).OverlapCoefficient(NewTokenProfile(b))
}

// MongeElkan returns the Monge-Elkan similarity: the average, over tokens
// of a, of the best Smith-Waterman similarity against tokens of b. It is
// asymmetric by definition; SymmetricMongeElkan averages both directions.
func MongeElkan(a, b []string) float64 {
	return NewTokenProfile(a).MongeElkan(NewTokenProfile(b), nil)
}

// SymmetricMongeElkan averages MongeElkan in both directions.
func SymmetricMongeElkan(a, b []string) float64 {
	return (MongeElkan(a, b) + MongeElkan(b, a)) / 2
}

// OnTokens lifts a TokenFunc to a string similarity using Tokenize.
func OnTokens(f TokenFunc) Func {
	return func(a, b string) float64 { return f(Tokenize(a), Tokenize(b)) }
}

// CharMeasures returns the paper's seven character-level schema-based
// measures by name.
func CharMeasures() map[string]Func {
	return map[string]Func{
		"Levenshtein":         Levenshtein,
		"DamerauLevenshtein":  DamerauLevenshtein,
		"Jaro":                Jaro,
		"NeedlemanWunsch":     NeedlemanWunsch,
		"QGramsDistance":      QGramsDistance,
		"LongestCommonSubstr": LongestCommonSubstring,
		"LongestCommonSubseq": LongestCommonSubsequence,
	}
}

// TokenMeasures returns the paper's nine token-level schema-based measures
// by name, lifted to string similarities via Tokenize.
func TokenMeasures() map[string]Func {
	return map[string]Func{
		"Cosine":             OnTokens(CosineTokens),
		"BlockDistance":      OnTokens(BlockDistance),
		"Dice":               OnTokens(Dice),
		"SimonWhite":         OnTokens(SimonWhite),
		"OverlapCoefficient": OnTokens(OverlapCoefficient),
		"Euclidean":          OnTokens(EuclideanTokens),
		"Jaccard":            OnTokens(Jaccard),
		"GeneralizedJaccard": OnTokens(GeneralizedJaccard),
		"MongeElkan":         OnTokens(MongeElkan),
	}
}

// AllMeasures returns all sixteen schema-based measures (character- and
// token-level) by name.
func AllMeasures() map[string]Func {
	all := CharMeasures()
	for name, f := range TokenMeasures() {
		all[name] = f
	}
	return all
}
