package strsim

import (
	"math"
	"strings"
	"unicode"
)

// TokenFunc is a normalized similarity over token multisets.
type TokenFunc func(a, b []string) float64

// Tokenize splits s into lower-cased word tokens on any run of
// non-letter/non-digit characters.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// counts builds a multiset from tokens.
func counts(tokens []string) map[string]int {
	m := make(map[string]int, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

// CosineTokens returns the cosine of the angle between the token count
// vectors of a and b.
func CosineTokens(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ca, cb := counts(a), counts(b)
	dot, na, nb := 0.0, 0.0, 0.0
	for t, x := range ca {
		na += float64(x) * float64(x)
		if y, ok := cb[t]; ok {
			dot += float64(x) * float64(y)
		}
	}
	for _, y := range cb {
		nb += float64(y) * float64(y)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// BlockDistance returns the normalized L1 (Manhattan) similarity between
// the token count vectors: 1 - ||a-b||₁ / (|a|+|b|).
func BlockDistance(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := counts(a), counts(b)
	dist := 0
	for t, x := range ca {
		dist += abs(x - cb[t])
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			dist += y
		}
	}
	return 1 - float64(dist)/float64(len(a)+len(b))
}

// EuclideanTokens returns the normalized Euclidean similarity between the
// token count vectors: 1 - ||a-b||₂ / sqrt(||a||₂² + ||b||₂²).
func EuclideanTokens(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := counts(a), counts(b)
	sq, na, nb := 0.0, 0.0, 0.0
	for t, x := range ca {
		d := float64(x - cb[t])
		sq += d * d
		na += float64(x) * float64(x)
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			sq += float64(y) * float64(y)
		}
		nb += float64(y) * float64(y)
	}
	maxD := math.Sqrt(na + nb)
	if maxD == 0 {
		return 1
	}
	return 1 - math.Sqrt(sq)/maxD
}

// Jaccard returns |A∩B| / |A∪B| over token sets.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := counts(a), counts(b)
	inter := 0
	for t := range ca {
		if _, ok := cb[t]; ok {
			inter++
		}
	}
	union := len(ca) + len(cb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// GeneralizedJaccard returns Σmin(count) / Σmax(count) over token
// multisets.
func GeneralizedJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := counts(a), counts(b)
	minSum, maxSum := 0, 0
	for t, x := range ca {
		y := cb[t]
		minSum += min2(x, y)
		maxSum += max2(x, y)
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			maxSum += y
		}
	}
	if maxSum == 0 {
		return 1
	}
	return float64(minSum) / float64(maxSum)
}

// Dice returns 2|A∩B| / (|A|+|B|) over token sets.
func Dice(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := counts(a), counts(b)
	inter := 0
	for t := range ca {
		if _, ok := cb[t]; ok {
			inter++
		}
	}
	den := len(ca) + len(cb)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

// SimonWhite is Dice over multisets: 2·Σmin(count) / (|a|+|b|).
func SimonWhite(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := counts(a), counts(b)
	inter := 0
	for t, x := range ca {
		inter += min2(x, cb[t])
	}
	den := len(a) + len(b)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

// OverlapCoefficient returns |A∩B| / min(|A|,|B|) over token sets.
func OverlapCoefficient(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ca, cb := counts(a), counts(b)
	inter := 0
	for t := range ca {
		if _, ok := cb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(min2(len(ca), len(cb)))
}

// MongeElkan returns the Monge-Elkan similarity: the average, over tokens
// of a, of the best Smith-Waterman similarity against tokens of b. It is
// asymmetric by definition; SymmetricMongeElkan averages both directions.
func MongeElkan(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, wa := range a {
		best := 0.0
		for _, wb := range b {
			if s := SmithWaterman(wa, wb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// SymmetricMongeElkan averages MongeElkan in both directions.
func SymmetricMongeElkan(a, b []string) float64 {
	return (MongeElkan(a, b) + MongeElkan(b, a)) / 2
}

// OnTokens lifts a TokenFunc to a string similarity using Tokenize.
func OnTokens(f TokenFunc) Func {
	return func(a, b string) float64 { return f(Tokenize(a), Tokenize(b)) }
}

// CharMeasures returns the paper's seven character-level schema-based
// measures by name.
func CharMeasures() map[string]Func {
	return map[string]Func{
		"Levenshtein":         Levenshtein,
		"DamerauLevenshtein":  DamerauLevenshtein,
		"Jaro":                Jaro,
		"NeedlemanWunsch":     NeedlemanWunsch,
		"QGramsDistance":      QGramsDistance,
		"LongestCommonSubstr": LongestCommonSubstring,
		"LongestCommonSubseq": LongestCommonSubsequence,
	}
}

// TokenMeasures returns the paper's nine token-level schema-based measures
// by name, lifted to string similarities via Tokenize.
func TokenMeasures() map[string]Func {
	return map[string]Func{
		"Cosine":             OnTokens(CosineTokens),
		"BlockDistance":      OnTokens(BlockDistance),
		"Dice":               OnTokens(Dice),
		"SimonWhite":         OnTokens(SimonWhite),
		"OverlapCoefficient": OnTokens(OverlapCoefficient),
		"Euclidean":          OnTokens(EuclideanTokens),
		"Jaccard":            OnTokens(Jaccard),
		"GeneralizedJaccard": OnTokens(GeneralizedJaccard),
		"MongeElkan":         OnTokens(MongeElkan),
	}
}

// AllMeasures returns all sixteen schema-based measures (character- and
// token-level) by name.
func AllMeasures() map[string]Func {
	all := CharMeasures()
	for name, f := range TokenMeasures() {
		all[name] = f
	}
	return all
}
