package strsim

import (
	"math"
	"math/rand"
	"testing"
)

// Reference implementations: the historical map[string]int token
// measures, kept here verbatim so the profile-based merge joins can be
// proven bit-identical against them.

func refCounts(tokens []string) map[string]int {
	m := make(map[string]int, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

func refCosine(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ca, cb := refCounts(a), refCounts(b)
	dot, na, nb := 0.0, 0.0, 0.0
	for t, x := range ca {
		na += float64(x) * float64(x)
		if y, ok := cb[t]; ok {
			dot += float64(x) * float64(y)
		}
	}
	for _, y := range cb {
		nb += float64(y) * float64(y)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func refBlockDistance(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := refCounts(a), refCounts(b)
	dist := 0
	for t, x := range ca {
		d := x - cb[t]
		if d < 0 {
			d = -d
		}
		dist += d
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			dist += y
		}
	}
	return 1 - float64(dist)/float64(len(a)+len(b))
}

func refEuclidean(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := refCounts(a), refCounts(b)
	sq, na, nb := 0.0, 0.0, 0.0
	for t, x := range ca {
		d := float64(x - cb[t])
		sq += d * d
		na += float64(x) * float64(x)
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			sq += float64(y) * float64(y)
		}
		nb += float64(y) * float64(y)
	}
	maxD := math.Sqrt(na + nb)
	if maxD == 0 {
		return 1
	}
	return 1 - math.Sqrt(sq)/maxD
}

func refJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := refCounts(a), refCounts(b)
	inter := 0
	for t := range ca {
		if _, ok := cb[t]; ok {
			inter++
		}
	}
	union := len(ca) + len(cb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func refGeneralizedJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := refCounts(a), refCounts(b)
	minSum, maxSum := 0, 0
	for t, x := range ca {
		y := cb[t]
		minSum += min2(x, y)
		maxSum += max2(x, y)
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			maxSum += y
		}
	}
	if maxSum == 0 {
		return 1
	}
	return float64(minSum) / float64(maxSum)
}

func refDice(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := refCounts(a), refCounts(b)
	inter := 0
	for t := range ca {
		if _, ok := cb[t]; ok {
			inter++
		}
	}
	den := len(ca) + len(cb)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

func refSimonWhite(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca, cb := refCounts(a), refCounts(b)
	inter := 0
	for t, x := range ca {
		inter += min2(x, cb[t])
	}
	den := len(a) + len(b)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

func refOverlap(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ca, cb := refCounts(a), refCounts(b)
	inter := 0
	for t := range ca {
		if _, ok := cb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(min2(len(ca), len(cb)))
}

func refMongeElkan(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, wa := range a {
		best := 0.0
		for _, wb := range b {
			if s := SmithWaterman(wa, wb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

func refQGrams(a, b string) float64 {
	profile := func(s string, q int) map[string]int {
		if s == "" {
			return nil
		}
		pad := ""
		for i := 0; i < q-1; i++ {
			pad += "#"
		}
		padded := []rune(pad + s + pad)
		p := make(map[string]int)
		for i := 0; i+q <= len(padded); i++ {
			p[string(padded[i:i+q])]++
		}
		return p
	}
	pa, pb := profile(a, 3), profile(b, 3)
	total, dist := 0, 0
	for g, ca := range pa {
		cb := pb[g]
		d := ca - cb
		if d < 0 {
			d = -d
		}
		dist += d
		total += ca + cb
	}
	for g, cb := range pb {
		if _, seen := pa[g]; !seen {
			dist += cb
			total += cb
		}
	}
	if total == 0 {
		return 1
	}
	return 1 - float64(dist)/float64(total)
}

// randomTokens draws token lists with heavy duplication so intersections,
// multiset counts and empty cases are all exercised.
func randomTokens(rng *rand.Rand) []string {
	vocab := []string{"alpha", "beta", "gamma", "delta", "x1", "model", "pro", "2024", "éclair", "a"}
	n := rng.Intn(8)
	out := make([]string, n)
	for i := range out {
		out[i] = vocab[rng.Intn(len(vocab))]
	}
	return out
}

func TestProfileMeasuresBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	refs := []struct {
		name string
		ref  func(a, b []string) float64
		got  func(a, b []string) float64
	}{
		{"Cosine", refCosine, CosineTokens},
		{"BlockDistance", refBlockDistance, BlockDistance},
		{"Euclidean", refEuclidean, EuclideanTokens},
		{"Jaccard", refJaccard, Jaccard},
		{"GeneralizedJaccard", refGeneralizedJaccard, GeneralizedJaccard},
		{"Dice", refDice, Dice},
		{"SimonWhite", refSimonWhite, SimonWhite},
		{"Overlap", refOverlap, OverlapCoefficient},
		{"MongeElkan", refMongeElkan, MongeElkan},
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randomTokens(rng), randomTokens(rng)
		for _, m := range refs {
			want, got := m.ref(a, b), m.got(a, b)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%s(%v, %v) = %v, reference %v", m.name, a, b, got, want)
			}
		}
	}
}

func TestTokenSimsMatchesStandaloneMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	standalone := []func(a, b []string) float64{
		CosineTokens, BlockDistance, Dice, SimonWhite, OverlapCoefficient,
		EuclideanTokens, Jaccard, GeneralizedJaccard, MongeElkan,
	}
	cache := NewSWCache()
	for trial := 0; trial < 300; trial++ {
		a, b := randomTokens(rng), randomTokens(rng)
		pa, pb := NewTokenProfile(a), NewTokenProfile(b)
		sims := TokenSims(pa, pb, cache)
		for k, f := range standalone {
			if want := f(a, b); math.Float64bits(want) != math.Float64bits(sims[k]) {
				t.Fatalf("TokenSims[%d](%v, %v) = %v, standalone %v", k, a, b, sims[k], want)
			}
		}
	}
}

func TestQGramProfileBitIdentical(t *testing.T) {
	cases := []string{"", "a", "ab", "abc", "abcdef", "ααβγ", "hello world", "hhh"}
	for _, a := range cases {
		for _, b := range cases {
			want := refQGrams(a, b)
			got := QGramsDistance(a, b)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("QGramsDistance(%q, %q) = %v, reference %v", a, b, got, want)
			}
		}
	}
}

func TestSWCacheConsistency(t *testing.T) {
	c := NewSWCache()
	a, b := []string{"galaxy", "note"}, []string{"galaxy", "notes", "pro"}
	pa, pb := NewTokenProfile(a), NewTokenProfile(b)
	first := pa.MongeElkan(pb, c)
	second := pa.MongeElkan(pb, c) // served from the memo
	uncached := pa.MongeElkan(pb, nil)
	if first != second || first != uncached {
		t.Fatalf("memoized MongeElkan diverged: %v / %v / %v", first, second, uncached)
	}
}

// TestQGramIDProfileMatchesStringProfile pins the interned-id q-gram
// distance bit-for-bit against the string-profile implementation.
func TestQGramIDProfileMatchesStringProfile(t *testing.T) {
	texts := []string{
		"", "a", "ab", "abc", "golden dragon bistro", "harbor grill",
		"日本語 カフェ", "###", "aaaa", "Éclair café", "x#y",
	}
	vocab := NewQGramVocab()
	idProfs := make([]*QGramIDProfile, len(texts))
	strProfs := make([]*QGramProfile, len(texts))
	for i, s := range texts {
		idProfs[i] = vocab.Profile(s, 3)
		strProfs[i] = NewQGramProfile(s, 3)
	}
	for i := range texts {
		for j := range texts {
			got := idProfs[i].Distance(idProfs[j])
			want := strProfs[i].Distance(strProfs[j])
			if got != want {
				t.Fatalf("Distance(%q,%q) = %v, string profile %v", texts[i], texts[j], got, want)
			}
		}
	}
}
