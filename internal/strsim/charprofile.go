package strsim

import (
	"slices"
	"sort"
)

// CharProfile is the precomputed one-vs-many form of a string for the
// character-level measures, built once per entity and streamed against
// many opponents: the rune slice, the PEQ match-bitmask tables feeding
// the bit-parallel Levenshtein / Damerau-Levenshtein / LCS kernels in
// bitpar.go, and a suffix automaton for longest-common-substring
// scans. Every method is bit-identical to the corresponding scalar
// *Seq measure on (p.Runes(), rb) — the integer kernels produce equal
// integers and the normalizations are shared — which the fuzz suite
// pins.
//
// A profile is immutable after construction and safe for concurrent
// readers; the mutable per-call state lives in CharScratch, one per
// worker.
type CharProfile struct {
	runes []rune

	// Bit-parallel pattern state: single-word for ≤ 64 runes, blocked
	// otherwise (Damerau falls back to the scalar DP in the blocked
	// case).
	peq1 *peqSingle
	peqW *peqBlocks
	// sam is the suffix automaton over runes; nil for the empty string.
	sam *suffixAutomaton
}

// NewCharProfile builds the character profile of text.
func NewCharProfile(text string) *CharProfile {
	p := &CharProfile{runes: []rune(text)}
	m := len(p.runes)
	if m == 0 {
		return p
	}
	if m <= 64 {
		p.peq1 = newPeqSingle(p.runes)
	} else {
		p.peqW = newPeqBlocks(p.runes, (m+63)/64)
	}
	p.sam = newSuffixAutomaton(p.runes)
	return p
}

// CharProfileAll builds one profile per text.
func CharProfileAll(texts []string) []*CharProfile {
	out := make([]*CharProfile, len(texts))
	for i, t := range texts {
		out[i] = NewCharProfile(t)
	}
	return out
}

// Runes returns the profiled rune sequence. Callers must not modify it.
func (p *CharProfile) Runes() []rune { return p.runes }

// CharScratch is the reusable per-worker state of the character
// kernels: block vectors for the multi-word bit-parallel paths and
// integer DP rows for the scalar ones (Damerau fallback, Needleman-
// Wunsch, Smith-Waterman, Jaro match flags). Values never survive a
// call; a scratch must not be shared between goroutines.
type CharScratch struct {
	blocks [3][]uint64
	rows   [3][]int
	flags  [2][]bool
}

// NewCharScratch returns an empty scratch; slices grow on demand.
func NewCharScratch() *CharScratch { return &CharScratch{} }

func (s *CharScratch) block(k, n int) []uint64 {
	if cap(s.blocks[k]) < n {
		s.blocks[k] = make([]uint64, n)
	}
	return s.blocks[k][:n]
}

func (s *CharScratch) row(k, n int) []int {
	if cap(s.rows[k]) < n {
		s.rows[k] = make([]int, n)
	}
	return s.rows[k][:n]
}

func (s *CharScratch) flag(k, n int) []bool {
	if cap(s.flags[k]) < n {
		s.flags[k] = make([]bool, n)
	}
	f := s.flags[k][:n]
	for i := range f {
		f[i] = false
	}
	return f
}

// LevenshteinDistance is LevenshteinDistanceSeq(p.Runes(), rb) through
// the bit-parallel kernels. scratch may be nil for patterns ≤ 64 runes.
func (p *CharProfile) LevenshteinDistance(rb []rune, scratch *CharScratch) int {
	m := len(p.runes)
	if m == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return m
	}
	if p.peq1 != nil {
		return levDistSingle(p.peq1, m, rb)
	}
	if scratch == nil {
		scratch = NewCharScratch()
	}
	w := p.peqW.w
	return levDistBlocks(p.peqW, m, rb, scratch.block(0, w), scratch.block(1, w))
}

// Levenshtein is LevenshteinSeq(p.Runes(), rb).
func (p *CharProfile) Levenshtein(rb []rune, scratch *CharScratch) float64 {
	return normDist(p.LevenshteinDistance(rb, scratch), len(p.runes), len(rb))
}

// DamerauLevenshteinDistance is DamerauLevenshteinDistanceSeq(p.Runes(),
// rb): bit-parallel for patterns ≤ 64 runes, the scalar DP otherwise.
func (p *CharProfile) DamerauLevenshteinDistance(rb []rune, scratch *CharScratch) int {
	m := len(p.runes)
	if m == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return m
	}
	if p.peq1 != nil {
		return damerauDistSingle(p.peq1, m, rb)
	}
	return damerauDistRows(p.runes, rb, scratch)
}

// DamerauLevenshtein is DamerauLevenshteinSeq(p.Runes(), rb).
func (p *CharProfile) DamerauLevenshtein(rb []rune, scratch *CharScratch) float64 {
	return normDist(p.DamerauLevenshteinDistance(rb, scratch), len(p.runes), len(rb))
}

// LongestCommonSubsequence is LongestCommonSubsequenceSeq(p.Runes(), rb).
func (p *CharProfile) LongestCommonSubsequence(rb []rune, scratch *CharScratch) float64 {
	m := len(p.runes)
	if m == 0 && len(rb) == 0 {
		return 1
	}
	if m == 0 || len(rb) == 0 {
		return 0
	}
	var l int
	if p.peq1 != nil {
		l = lcsLenSingle(p.peq1, m, rb)
	} else {
		if scratch == nil {
			scratch = NewCharScratch()
		}
		l = lcsLenBlocks(p.peqW, m, rb, scratch.block(0, p.peqW.w))
	}
	return float64(l) / float64(max2(m, len(rb)))
}

// LongestCommonSubstring is LongestCommonSubstringSeq(p.Runes(), rb),
// streaming rb through the pattern's suffix automaton in O(|rb|) steps.
func (p *CharProfile) LongestCommonSubstring(rb []rune) float64 {
	m := len(p.runes)
	if m == 0 && len(rb) == 0 {
		return 1
	}
	if m == 0 || len(rb) == 0 {
		return 0
	}
	return float64(p.sam.longestMatch(rb)) / float64(max2(m, len(rb)))
}

// suffixAutomaton is the suffix automaton of a rune sequence with
// transitions flattened into sorted CSR arrays: state s's out-edges are
// trRune/trTo[trOff[s]:trOff[s+1]], sorted by rune for binary search.
// Matching a text against it yields, at each text position, the length
// of the longest substring of the pattern ending there.
type suffixAutomaton struct {
	maxLen []int32
	link   []int32
	trOff  []int32
	trRune []rune
	trTo   []int32
}

// samState is the construction-time form of one automaton state.
type samState struct {
	next     map[rune]int32
	link     int32
	maxLen   int32
	firstKey rune // fast path: most states have exactly one transition
	firstTo  int32
	nKeys    int
}

func newSuffixAutomaton(text []rune) *suffixAutomaton {
	states := make([]samState, 1, 2*len(text))
	states[0] = samState{link: -1}
	last := int32(0)
	get := func(s int32, c rune) (int32, bool) {
		st := &states[s]
		if st.nKeys == 1 {
			if st.firstKey == c {
				return st.firstTo, true
			}
			return 0, false
		}
		if st.next == nil {
			return 0, false
		}
		to, ok := st.next[c]
		return to, ok
	}
	set := func(s int32, c rune, to int32) {
		st := &states[s]
		switch {
		case st.nKeys == 0:
			st.firstKey, st.firstTo, st.nKeys = c, to, 1
		case st.nKeys == 1 && st.next == nil:
			if st.firstKey == c {
				st.firstTo = to
				return
			}
			st.next = map[rune]int32{st.firstKey: st.firstTo, c: to}
			st.nKeys = 2
		default:
			if _, ok := st.next[c]; !ok {
				st.nKeys++
			}
			st.next[c] = to
		}
	}
	for _, c := range text {
		cur := int32(len(states))
		states = append(states, samState{maxLen: states[last].maxLen + 1, link: -1})
		p := last
		for p != -1 {
			if _, ok := get(p, c); ok {
				break
			}
			set(p, c, cur)
			p = states[p].link
		}
		if p == -1 {
			states[cur].link = 0
		} else {
			q, _ := get(p, c)
			if states[p].maxLen+1 == states[q].maxLen {
				states[cur].link = q
			} else {
				clone := int32(len(states))
				qs := states[q]
				cl := samState{maxLen: states[p].maxLen + 1, link: qs.link,
					firstKey: qs.firstKey, firstTo: qs.firstTo, nKeys: qs.nKeys}
				if qs.next != nil {
					cl.next = make(map[rune]int32, len(qs.next))
					for k, v := range qs.next {
						cl.next[k] = v
					}
				}
				states = append(states, cl)
				for p != -1 {
					if to, ok := get(p, c); ok && to == q {
						set(p, c, clone)
						p = states[p].link
					} else {
						break
					}
				}
				states[q].link = clone
				states[cur].link = clone
			}
		}
		last = cur
	}

	// Flatten to CSR with per-state rune-sorted transitions.
	a := &suffixAutomaton{
		maxLen: make([]int32, len(states)),
		link:   make([]int32, len(states)),
		trOff:  make([]int32, len(states)+1),
	}
	total := 0
	for i := range states {
		a.maxLen[i] = states[i].maxLen
		a.link[i] = states[i].link
		total += states[i].nKeys
	}
	a.trRune = make([]rune, 0, total)
	a.trTo = make([]int32, 0, total)
	var keys []rune
	for i := range states {
		a.trOff[i] = int32(len(a.trRune))
		st := &states[i]
		if st.next == nil {
			if st.nKeys == 1 {
				a.trRune = append(a.trRune, st.firstKey)
				a.trTo = append(a.trTo, st.firstTo)
			}
			continue
		}
		keys = keys[:0]
		for k := range st.next {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			a.trRune = append(a.trRune, k)
			a.trTo = append(a.trTo, st.next[k])
		}
	}
	a.trOff[len(states)] = int32(len(a.trRune))
	return a
}

// step returns the transition from state s on rune c, or -1.
func (a *suffixAutomaton) step(s int32, c rune) int32 {
	lo, hi := a.trOff[s], a.trOff[s+1]
	if hi-lo <= 4 {
		for k := lo; k < hi; k++ {
			if a.trRune[k] == c {
				return a.trTo[k]
			}
		}
		return -1
	}
	runes := a.trRune[lo:hi]
	k := sort.Search(len(runes), func(i int) bool { return runes[i] >= c })
	if k < len(runes) && runes[k] == c {
		return a.trTo[int(lo)+k]
	}
	return -1
}

// longestMatch returns the length of the longest common substring of
// the automaton's pattern and text.
func (a *suffixAutomaton) longestMatch(text []rune) int {
	var best, l int32
	cur := int32(0)
	for _, c := range text {
		for {
			if to := a.step(cur, c); to >= 0 {
				cur = to
				l++
				break
			}
			if cur == 0 {
				l = 0
				break
			}
			cur = a.link[cur]
			l = a.maxLen[cur]
		}
		if l > best {
			best = l
		}
	}
	return int(best)
}

// damerauDistRows is the scalar restricted Damerau-Levenshtein DP over
// scratch-provided rows, used as the fallback for patterns longer than
// one machine word. It mirrors DamerauLevenshteinDistanceSeq cell for
// cell.
func damerauDistRows(ra, rb []rune, scratch *CharScratch) int {
	if scratch == nil {
		scratch = NewCharScratch()
	}
	width := len(rb) + 1
	two, prev, cur := scratch.row(0, width), scratch.row(1, width), scratch.row(2, width)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if v := two[j-2] + 1; v < cur[j] {
					cur[j] = v
				}
			}
		}
		two, prev, cur = prev, cur, two
	}
	d := prev[len(rb)]
	scratch.rows[0], scratch.rows[1], scratch.rows[2] = two, prev, cur
	return d
}
