package strsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want float64, name string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestLevenshteinDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"ab", "ba", 2}, // transposition costs 2 without Damerau
		{"café", "cafe", 1},
	}
	for _, c := range cases {
		if got := LevenshteinDistance(c.a, c.b); got != c.want {
			t.Errorf("LevenshteinDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshteinDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"ab", "ba", 1},
		{"abcd", "acbd", 1},
		{"ca", "abc", 3}, // restricted DL cannot do better here
		{"kitten", "sitting", 3},
		{"", "xy", 2},
	}
	for _, c := range cases {
		if got := DamerauLevenshteinDistance(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshteinDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic reference values.
	approx(t, Jaro("MARTHA", "MARHTA"), 0.944444444444444, "Jaro(MARTHA,MARHTA)")
	approx(t, Jaro("DIXON", "DICKSONX"), 0.766666666666667, "Jaro(DIXON,DICKSONX)")
	approx(t, Jaro("", ""), 1, "Jaro empty")
	approx(t, Jaro("a", ""), 0, "Jaro one empty")
	approx(t, Jaro("abc", "xyz"), 0, "Jaro disjoint")
}

func TestNeedlemanWunsch(t *testing.T) {
	approx(t, NeedlemanWunsch("abc", "abc"), 1, "NW identical")
	approx(t, NeedlemanWunsch("", ""), 1, "NW empty")
	// Mismatching everything: cost 3 over 2*3 = 0.5.
	approx(t, NeedlemanWunsch("abc", "xyz"), 0.5, "NW disjoint")
	if s := NeedlemanWunsch("abcdef", "abcdeg"); s <= 0.5 || s >= 1 {
		t.Fatalf("NW near-identical = %v, want in (0.5, 1)", s)
	}
}

func TestQGrams(t *testing.T) {
	approx(t, QGramsDistance("abc", "abc"), 1, "qgrams identical")
	approx(t, QGramsDistance("", ""), 1, "qgrams empty")
	if s := QGramsDistance("abcde", "abcdf"); s <= 0 || s >= 1 {
		t.Fatalf("qgrams near = %v, want in (0,1)", s)
	}
	if s := QGramsDistance("aaaa", "zzzz"); s != 0 {
		t.Fatalf("qgrams disjoint = %v, want 0", s)
	}
}

func TestLongestCommon(t *testing.T) {
	approx(t, LongestCommonSubstring("abcdef", "zabcy"), 3.0/6.0, "LCSubstring")
	approx(t, LongestCommonSubsequence("abcdef", "acf"), 3.0/6.0, "LCSubsequence")
	approx(t, LongestCommonSubstring("", ""), 1, "LCSubstring empty")
	approx(t, LongestCommonSubsequence("ab", ""), 0, "LCSubsequence one empty")
	// Subsequence is at least as permissive as substring.
	if LongestCommonSubsequence("axbycz", "abc") < LongestCommonSubstring("axbycz", "abc") {
		t.Fatal("subsequence < substring")
	}
}

func TestSmithWaterman(t *testing.T) {
	approx(t, SmithWaterman("abc", "abc"), 1, "SW identical")
	approx(t, SmithWaterman("xxabcx", "yabcy"), 3.0/5.0, "SW local match")
	approx(t, SmithWaterman("", "x"), 0, "SW empty")
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello,  World! 42-x")
	want := []string{"hello", "world", "42", "x"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestTokenMeasuresKnownValues(t *testing.T) {
	a := []string{"joe", "biden", "president"}
	b := []string{"joe", "biden"}
	approx(t, Jaccard(a, b), 2.0/3.0, "Jaccard")
	approx(t, Dice(a, b), 4.0/5.0, "Dice")
	approx(t, OverlapCoefficient(a, b), 1, "Overlap")
	approx(t, CosineTokens(a, b), 2/(math.Sqrt(3)*math.Sqrt(2)), "Cosine")
	approx(t, BlockDistance(a, b), 1-1.0/5.0, "Block")
	approx(t, GeneralizedJaccard(a, b), 2.0/3.0, "GenJaccard")
	approx(t, SimonWhite(a, b), 4.0/5.0, "SimonWhite")
}

func TestMultisetVsSetMeasures(t *testing.T) {
	a := []string{"x", "x", "y"}
	b := []string{"x", "y"}
	// Set-based: identical sets.
	approx(t, Jaccard(a, b), 1, "Jaccard multiset collapse")
	approx(t, Dice(a, b), 1, "Dice multiset collapse")
	// Multiset-based measures see the extra "x".
	approx(t, GeneralizedJaccard(a, b), 2.0/3.0, "GenJaccard multiset")
	approx(t, SimonWhite(a, b), 4.0/5.0, "SimonWhite multiset")
}

func TestMongeElkan(t *testing.T) {
	a := []string{"peter", "christen"}
	b := []string{"christian", "pedro"}
	me := MongeElkan(a, b)
	if me <= 0 || me > 1 {
		t.Fatalf("MongeElkan = %v, want in (0,1]", me)
	}
	approx(t, MongeElkan(a, a), 1, "MongeElkan identical")
	sym := SymmetricMongeElkan(a, b)
	approx(t, sym, (MongeElkan(a, b)+MongeElkan(b, a))/2, "SymmetricMongeElkan")
}

func TestRegistries(t *testing.T) {
	if n := len(CharMeasures()); n != 7 {
		t.Fatalf("CharMeasures: %d, want 7", n)
	}
	if n := len(TokenMeasures()); n != 9 {
		t.Fatalf("TokenMeasures: %d, want 9", n)
	}
	if n := len(AllMeasures()); n != 16 {
		t.Fatalf("AllMeasures: %d, want 16 (the paper's schema-based set)", n)
	}
}

// Every measure must be in [0,1], symmetric where defined to be, and give
// 1 for identical inputs.
func TestPropertyMeasureContracts(t *testing.T) {
	symmetric := map[string]bool{
		"Levenshtein": true, "DamerauLevenshtein": true, "Jaro": true,
		"NeedlemanWunsch": true, "QGramsDistance": true,
		"LongestCommonSubstr": true, "LongestCommonSubseq": true,
		"Cosine": true, "BlockDistance": true, "Dice": true,
		"SimonWhite": true, "OverlapCoefficient": true, "Euclidean": true,
		"Jaccard": true, "GeneralizedJaccard": true,
		"MongeElkan": false, // asymmetric by definition
	}
	measures := AllMeasures()
	f := func(a, b string) bool {
		// Keep inputs modest: DP measures are quadratic.
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		a, b = strings.ToValidUTF8(a, ""), strings.ToValidUTF8(b, "")
		for name, m := range measures {
			sab := m(a, b)
			if sab < -1e-9 || sab > 1+1e-9 || math.IsNaN(sab) {
				t.Logf("%s(%q,%q) = %v out of range", name, a, b, sab)
				return false
			}
			if saa := m(a, a); math.Abs(saa-1) > 1e-9 {
				t.Logf("%s(%q,%q) = %v, want 1", name, a, a, saa)
				return false
			}
			if symmetric[name] {
				if sba := m(b, a); math.Abs(sab-sba) > 1e-9 {
					t.Logf("%s not symmetric on (%q,%q): %v vs %v", name, a, b, sab, sba)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Edit-distance triangle inequality.
func TestPropertyLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 25 {
			a = a[:25]
		}
		if len(b) > 25 {
			b = b[:25]
		}
		if len(c) > 25 {
			c = c[:25]
		}
		a = strings.ToValidUTF8(a, "")
		b = strings.ToValidUTF8(b, "")
		c = strings.ToValidUTF8(c, "")
		ab := LevenshteinDistance(a, b)
		bc := LevenshteinDistance(b, c)
		ac := LevenshteinDistance(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Damerau-Levenshtein never exceeds Levenshtein.
func TestPropertyDamerauAtMostLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 25 {
			a = a[:25]
		}
		if len(b) > 25 {
			b = b[:25]
		}
		a = strings.ToValidUTF8(a, "")
		b = strings.ToValidUTF8(b, "")
		return DamerauLevenshteinDistance(a, b) <= LevenshteinDistance(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
