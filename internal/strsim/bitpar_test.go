package strsim

import (
	"math/rand"
	"strings"
	"testing"
)

// The bit-parallel kernels and the suffix automaton must agree with the
// scalar DP references on every input: exhaustively over short
// small-alphabet pairs (where every recurrence corner — transposition
// chains, runs of matches, empty prefixes — occurs), and randomly over
// longer unicode strings crossing the 64-rune word boundary where the
// blocked kernels and the Damerau fallback take over.

// refSmithWatermanSeq is the pre-scratch float64 Smith-Waterman DP,
// retained verbatim as the reference for the integer-scaled rewrite.
func refSmithWatermanSeq(ra, rb []rune) float64 {
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]float64, len(rb)+1)
	cur := make([]float64, len(rb)+1)
	best := 0.0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := swMismatch
			if ra[i-1] == rb[j-1] {
				sub = swMatch
			}
			v := prev[j-1] + sub
			if w := prev[j] + swGap; w > v {
				v = w
			}
			if w := cur[j-1] + swGap; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best / float64(min2(len(ra), len(rb))) / swMatch
}

// refNeedlemanWunschSeq is the float64 NW similarity via the original
// nwScore, the reference for the integer rewrite.
func refNeedlemanWunschSeq(ra, rb []rune) float64 {
	return NeedlemanWunschSeq(ra, rb)
}

// checkProfileAgreement pins every CharProfile kernel and scratch
// variant against the scalar references for one (a, b) pair.
func checkProfileAgreement(t *testing.T, a, b string) {
	t.Helper()
	ra, rb := []rune(a), []rune(b)
	p := NewCharProfile(a)
	scratch := NewCharScratch()

	if got, want := p.LevenshteinDistance(rb, scratch), LevenshteinDistanceSeq(ra, rb); got != want {
		t.Fatalf("LevenshteinDistance(%q,%q) = %d, scalar %d", a, b, got, want)
	}
	if got, want := p.Levenshtein(rb, scratch), LevenshteinSeq(ra, rb); got != want {
		t.Fatalf("Levenshtein(%q,%q) = %v, scalar %v", a, b, got, want)
	}
	if got, want := p.DamerauLevenshteinDistance(rb, scratch), DamerauLevenshteinDistanceSeq(ra, rb); got != want {
		t.Fatalf("DamerauLevenshteinDistance(%q,%q) = %d, scalar %d", a, b, got, want)
	}
	if got, want := p.LongestCommonSubsequence(rb, scratch), LongestCommonSubsequenceSeq(ra, rb); got != want {
		t.Fatalf("LongestCommonSubsequence(%q,%q) = %v, scalar %v", a, b, got, want)
	}
	if got, want := p.LongestCommonSubstring(rb), LongestCommonSubstringSeq(ra, rb); got != want {
		t.Fatalf("LongestCommonSubstring(%q,%q) = %v, scalar %v", a, b, got, want)
	}
	if got, want := JaroSeqScratch(ra, rb, scratch), JaroSeq(ra, rb); got != want {
		t.Fatalf("JaroSeqScratch(%q,%q) = %v, scalar %v", a, b, got, want)
	}
	if got, want := NeedlemanWunschSeqScratch(ra, rb, scratch), refNeedlemanWunschSeq(ra, rb); got != want {
		t.Fatalf("NeedlemanWunschSeqScratch(%q,%q) = %v, reference %v", a, b, got, want)
	}
	if got, want := SmithWatermanSeqScratch(ra, rb, scratch), refSmithWatermanSeq(ra, rb); got != want {
		t.Fatalf("SmithWatermanSeqScratch(%q,%q) = %v, reference %v", a, b, got, want)
	}
	if got, want := SmithWatermanSeq(ra, rb), refSmithWatermanSeq(ra, rb); got != want {
		t.Fatalf("SmithWatermanSeq(%q,%q) = %v, reference %v", a, b, got, want)
	}
	if got, want := p.NeedlemanWunsch(rb, scratch), refNeedlemanWunschSeq(ra, rb); got != want {
		t.Fatalf("bitpar NeedlemanWunsch(%q,%q) = %v, reference %v", a, b, got, want)
	}
	if got, want := JaroSeqBitpar(ra, rb, NewJaroTable(rb), scratch), JaroSeq(ra, rb); got != want {
		t.Fatalf("JaroSeqBitpar(%q,%q) = %v, scalar %v", a, b, got, want)
	}
}

// enumerate all strings over alphabet of length up to maxLen.
func enumerate(alphabet string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 1; l <= maxLen; l++ {
		var next []string
		for _, s := range frontier {
			for _, c := range alphabet {
				next = append(next, s+string(c))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func TestBitparExhaustiveSmall(t *testing.T) {
	// Binary alphabet up to length 5 hits every branch combination of
	// the recurrences (3^2·… cell neighborhoods, transposition chains).
	words := enumerate("ab", 5)
	for _, a := range words {
		for _, b := range words {
			checkProfileAgreement(t, a, b)
		}
	}
	// Ternary alphabet up to length 4 adds mismatch/transposition mixes
	// a binary alphabet cannot produce.
	words = enumerate("abc", 4)
	for _, a := range words {
		for _, b := range words {
			checkProfileAgreement(t, a, b)
		}
	}
}

func randomWord(rng *rand.Rand, alphabet []rune, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

func TestBitparRandomAroundWordBoundary(t *testing.T) {
	// Lengths 0..150 cross the 64-rune single-word limit in every
	// combination (short/short, short/long, long/long), exercising the
	// blocked Myers and LCS kernels and the Damerau scalar fallback,
	// with non-ASCII runes forcing the PEQ map path.
	rng := rand.New(rand.NewSource(7))
	alphabet := append([]rune("abcdefgh \u00e9\u00fc\u65e5\u672c\u8a9e"), ' ', '2')
	for iter := 0; iter < 400; iter++ {
		a := randomWord(rng, alphabet, 150)
		b := randomWord(rng, alphabet, 150)
		checkProfileAgreement(t, a, b)
	}
}

func TestBitparBoundaryLengths(t *testing.T) {
	// Exact word-boundary pattern lengths (63, 64, 65, 127, 128, 129)
	// against texts of assorted lengths, plus empties on both sides.
	rng := rand.New(rand.NewSource(11))
	alphabet := []rune("abcd")
	for _, m := range []int{0, 1, 2, 63, 64, 65, 127, 128, 129} {
		pa := make([]rune, m)
		for i := range pa {
			pa[i] = alphabet[rng.Intn(len(alphabet))]
		}
		a := string(pa)
		for _, n := range []int{0, 1, 5, 63, 64, 65, 130} {
			pb := make([]rune, n)
			for i := range pb {
				pb[i] = alphabet[rng.Intn(len(alphabet))]
			}
			checkProfileAgreement(t, a, string(pb))
		}
	}
}

func TestCharProfileSelfSimilarity(t *testing.T) {
	for _, s := range []string{"", "a", "golden dragon", strings.Repeat("xyzzy", 30), "café 日本"} {
		p := NewCharProfile(s)
		rb := []rune(s)
		if s != "" {
			if d := p.LevenshteinDistance(rb, nil); d != 0 {
				t.Fatalf("self Levenshtein distance %d", d)
			}
			if sim := p.LongestCommonSubstring(rb); sim != 1 {
				t.Fatalf("self LCSubstring %v", sim)
			}
		}
		if sim := p.LongestCommonSubsequence(rb, nil); sim != 1 {
			t.Fatalf("self LCSubsequence %v", sim)
		}
	}
}

// The same profile must be usable from many goroutines with distinct
// scratches (the row-kernel access pattern); run under -race.
func TestCharProfileConcurrentReaders(t *testing.T) {
	p := NewCharProfile(strings.Repeat("entity resolution über alles ", 4))
	texts := []string{"entity", strings.Repeat("resolution", 20), "", "über alles"}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			scratch := NewCharScratch()
			for iter := 0; iter < 50; iter++ {
				for _, txt := range texts {
					rb := []rune(txt)
					if got, want := p.LevenshteinDistance(rb, scratch), LevenshteinDistanceSeq(p.Runes(), rb); got != want {
						done <- errMismatch{got, want}
						return
					}
					p.LongestCommonSubstring(rb)
					p.LongestCommonSubsequence(rb, scratch)
					p.DamerauLevenshteinDistance(rb, scratch)
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errMismatch [2]int

func (e errMismatch) Error() string { return "concurrent kernel mismatch" }
