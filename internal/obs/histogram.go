package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultBounds are the upper bucket bounds (inclusive, nanoseconds) of
// the default latency layout: 50µs doubling through ~26s, 20 finite
// buckets plus the implicit +Inf overflow. The layout spans everything
// the module times — sub-millisecond cache hits through multi-second
// corpus builds — at a fixed 21 atomic slots per histogram.
var defaultBounds = func() []int64 {
	out := make([]int64, 20)
	b := int64(50_000) // 50µs
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}()

// Histogram is a fixed-bucket latency histogram: one atomic counter per
// bucket plus an atomic sum, so Observe is lock-free and cheap enough
// for per-request hot paths. Quantiles are estimated from the bucket
// counts by linear interpolation (see HistSnapshot.Quantile).
type Histogram struct {
	bounds []int64 // ascending upper bounds (ns), inclusive
	counts []atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns a histogram with the default latency buckets.
func NewHistogram() *Histogram { return NewHistogramBounds(defaultBounds) }

// NewHistogramBounds returns a histogram over the given ascending
// upper bounds in nanoseconds; an implicit +Inf bucket is appended.
func NewHistogramBounds(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration. Negative observations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// sort.Search over <= 20 bounds: a handful of well-predicted
	// comparisons, no allocation.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= ns })
	h.counts[i].Add(1)
	h.sum.Add(ns)
}

// Since observes the time elapsed since start.
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// Snapshot copies the current state (zero-valued on nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable copy of a histogram's state. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistSnapshot struct {
	Bounds []int64
	Counts []int64
	Sum    int64
	Count  int64
}

// Merge adds another snapshot's counts into this one. Both must share
// the same bucket layout (the module only ever merges default-layout
// histograms); mismatched layouts merge nothing and return false.
func (s *HistSnapshot) Merge(o HistSnapshot) bool {
	if o.Count == 0 {
		return true
	}
	if len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]int64(nil), o.Counts...)
		s.Sum, s.Count = o.Sum, o.Count
		return true
	}
	if len(s.Counts) != len(o.Counts) {
		return false
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return false
		}
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	s.Count += o.Count
	return true
}

// Quantile estimates the q-quantile (0 < q <= 1) as a duration, by
// locating the bucket holding the q·Count-th observation and linearly
// interpolating within its bounds. Observations in the +Inf bucket
// report the highest finite bound (the histogram cannot say more).
// Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: the last finite bound is the best estimate.
			return time.Duration(s.Bounds[len(s.Bounds)-1])
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		return time.Duration(lo) + time.Duration(frac*float64(hi-lo))
	}
	return time.Duration(s.Bounds[len(s.Bounds)-1])
}

// Mean returns the mean observation, 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// HistogramVec is a set of histograms keyed by one label value, created
// on first use (the per-algorithm / per-family / per-route latency
// families).
type HistogramVec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistogramVec returns an empty vec with default-layout members.
func NewHistogramVec() *HistogramVec {
	return &HistogramVec{m: map[string]*Histogram{}}
}

// With returns the histogram for the label value, creating it if
// needed. Nil-safe: a nil vec returns a nil (no-op) histogram.
func (v *HistogramVec) With(label string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[label]; h == nil {
		h = NewHistogram()
		v.m[label] = h
	}
	return h
}

// Snapshot copies every member histogram keyed by label value.
func (v *HistogramVec) Snapshot() map[string]HistSnapshot {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(v.m))
	for k, h := range v.m {
		out[k] = h.Snapshot()
	}
	return out
}
