// Package obs is the observability layer of the module: a
// dependency-free, lock-cheap metrics registry (atomic counters,
// gauges, fixed-bucket latency histograms with quantile estimation), a
// lightweight span tracer with a bounded ring of recent request traces
// and slow-request structured logging, and Prometheus text exposition
// over everything registered.
//
// Every type in the package is nil-receiver safe: a nil *Registry (the
// Disabled registry), nil *Counter, nil *Histogram, nil *Trace and nil
// *Tracer are all inert no-ops, so instrumented code paths need no
// branches — construction decides whether observability is on, and the
// per-observation cost of "off" is a nil check. Observations on live
// metrics are single atomic adds (histograms: one binary search over a
// small fixed bucket table plus two adds), cheap enough for hot paths.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Disabled is the nil registry: every metric handle it returns is a
// no-op. Benchmarks compare instrumented runs against it to pin the
// overhead of the observability layer.
var Disabled *Registry

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec is a set of counters keyed by one label value, created on
// first use. Label cardinality is the caller's responsibility; every
// user in this module draws labels from small fixed sets (routes,
// algorithm names, weight families, status classes).
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for the label value, creating it if needed.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[label]; c == nil {
		c = &Counter{}
		v.m[label] = c
	}
	return c
}

// Snapshot copies the current label -> value mapping.
func (v *CounterVec) Snapshot() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Load()
	}
	return out
}

// Metric kinds, used by the Prometheus exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one registered metric family: exactly one of the value
// sources is set.
type family struct {
	name  string
	help  string
	kind  string
	label string // label key for vec/func-map families

	counter   *Counter
	counterFn func() int64
	gaugeFn   func() float64
	labeledFn func() map[string]int64 // counter or gauge samples per label
	vec       *CounterVec
	hist      *Histogram
	histVec   *HistogramVec
}

// Registry holds named metric families. Registration is idempotent by
// name: re-registering an owned counter/histogram/vec returns the
// existing instance, so packages can share one registry without
// coordination. All methods are safe for concurrent use and inert on a
// nil receiver.
type Registry struct {
	start time.Time
	mu    sync.RWMutex
	fams  map[string]*family
}

// NewRegistry returns an empty registry; its uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), fams: map[string]*family{}}
}

// Uptime is the time since the registry was created (0 on nil).
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// register installs fam under its name unless one already exists, and
// returns the installed family.
func (r *Registry) register(fam *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.fams[fam.name]; ok {
		return have
	}
	r.fams[fam.name] = fam
	return fam
}

// Counter registers (or returns the existing) owned counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	fam := r.register(&family{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return fam.counter
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time (for counters owned by another subsystem).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, kind: kindCounter, counterFn: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// LabeledCounterFunc registers a labeled counter family whose samples
// (label value -> count) are read from fn at exposition time.
func (r *Registry) LabeledCounterFunc(name, help, label string, fn func() map[string]int64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, kind: kindCounter, label: label, labeledFn: fn})
}

// LabeledGaugeFunc registers a labeled gauge family whose samples
// (label value -> level) are read from fn at exposition time — e.g. a
// cluster router's per-backend health flags.
func (r *Registry) LabeledGaugeFunc(name, help, label string, fn func() map[string]int64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, kind: kindGauge, label: label, labeledFn: fn})
}

// CounterVec registers (or returns the existing) owned labeled counter
// family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	fam := r.register(&family{name: name, help: help, kind: kindCounter, label: label,
		vec: &CounterVec{m: map[string]*Counter{}}})
	return fam.vec
}

// Histogram registers (or returns the existing) owned latency histogram
// with the default bucket layout.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	fam := r.register(&family{name: name, help: help, kind: kindHistogram, hist: NewHistogram()})
	return fam.hist
}

// HistogramVec registers (or returns the existing) owned labeled
// histogram family with the default bucket layout.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	if r == nil {
		return nil
	}
	fam := r.register(&family{name: name, help: help, kind: kindHistogram, label: label,
		histVec: NewHistogramVec()})
	return fam.histVec
}

// families returns a name-sorted snapshot of the registered families.
func (r *Registry) families() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.fams))
	for _, fam := range r.fams {
		out = append(out, fam)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
