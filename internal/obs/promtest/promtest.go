// Package promtest is a minimal validating parser for the Prometheus
// text exposition format (version 0.0.4). It exists so the exposition
// endpoint can be checked structurally — every line parses, no metric
// family is emitted twice, histogram buckets are cumulative, counters
// are monotonic across scrapes — both in unit tests and in the CI
// scrape job, without depending on the Prometheus client libraries.
package promtest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the sample's metric name (including _bucket/_sum/_count
	// suffixes for histogram series).
	Name string
	// Labels is the raw label block without braces ("" when absent),
	// normalized enough for use as a series key.
	Labels string
	Value  float64
}

// Family is one metric family: its TYPE, HELP and samples in exposition
// order.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Scrape is a fully parsed exposition payload.
type Scrape struct {
	// Families keyed by family name.
	Families map[string]*Family
	// Order is the family emission order.
	Order []string
}

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// seriesName strips the histogram suffixes so samples attach to their
// family.
func seriesName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// Parse validates and parses one exposition payload. It fails on any
// unparseable line, on a family declared twice, on samples without a
// preceding TYPE declaration, on duplicate series (same name and label
// set), and on non-cumulative histogram buckets.
func Parse(text string) (*Scrape, error) {
	s := &Scrape{Families: map[string]*Family{}}
	var cur *Family
	seen := map[string]bool{} // duplicate-series detection
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !nameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad HELP name %q", lineNo, name)
			}
			if _, dup := s.Families[name]; dup {
				return nil, fmt.Errorf("line %d: family %q declared twice", lineNo, name)
			}
			cur = &Family{Name: name, Help: help}
			s.Families[name] = cur
			s.Order = append(s.Order, name)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: bad TYPE %q", lineNo, typ)
			}
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE %q without preceding HELP", lineNo, name)
			}
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("line %d: unparseable sample %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					return nil, fmt.Errorf("line %d: bad label %q", lineNo, pair)
				}
			}
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		famName := seriesName(name)
		fam, ok := s.Families[famName]
		if !ok {
			fam, ok = s.Families[name]
			famName = name
		}
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q without TYPE/HELP", lineNo, name)
		}
		if fam.Type == "" {
			return nil, fmt.Errorf("line %d: family %q has HELP but no TYPE", lineNo, famName)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: val})
	}
	for _, name := range s.Order {
		if err := checkHistogram(s.Families[name]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// splitLabels splits a label block on commas outside quotes.
func splitLabels(block string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	return append(out, block[start:])
}

// checkHistogram verifies each histogram series' buckets are cumulative
// and end with +Inf, and that _count matches the +Inf bucket.
func checkHistogram(f *Family) error {
	if f.Type != "histogram" {
		return nil
	}
	type hist struct {
		buckets []float64
		lastLe  string
		count   float64
		hasCnt  bool
	}
	series := map[string]*hist{}
	keyOf := func(labels string) string {
		var parts []string
		for _, p := range splitLabels(labels) {
			if p != "" && !strings.HasPrefix(p, "le=") {
				parts = append(parts, p)
			}
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for _, smp := range f.Samples {
		key := keyOf(smp.Labels)
		h := series[key]
		if h == nil {
			h = &hist{}
			series[key] = h
		}
		switch {
		case strings.HasSuffix(smp.Name, "_bucket"):
			if len(h.buckets) > 0 && smp.Value < h.buckets[len(h.buckets)-1] {
				return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative", f.Name, smp.Labels)
			}
			h.buckets = append(h.buckets, smp.Value)
			for _, p := range splitLabels(smp.Labels) {
				if strings.HasPrefix(p, "le=") {
					h.lastLe = p
				}
			}
		case strings.HasSuffix(smp.Name, "_count"):
			h.count = smp.Value
			h.hasCnt = true
		}
	}
	for key, h := range series {
		if len(h.buckets) == 0 {
			return fmt.Errorf("histogram %s{%s}: no buckets", f.Name, key)
		}
		if h.lastLe != `le="+Inf"` {
			return fmt.Errorf("histogram %s{%s}: last bucket is %s, want le=\"+Inf\"", f.Name, key, h.lastLe)
		}
		if h.hasCnt && h.count != h.buckets[len(h.buckets)-1] {
			return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", f.Name, key, h.count, h.buckets[len(h.buckets)-1])
		}
	}
	return nil
}

// CheckMonotonic verifies that every counter series present in both
// scrapes did not decrease from a to b.
func CheckMonotonic(a, b *Scrape) error {
	for name, fa := range a.Families {
		if fa.Type != "counter" {
			continue
		}
		fb, ok := b.Families[name]
		if !ok {
			return fmt.Errorf("counter family %q disappeared between scrapes", name)
		}
		bySeries := map[string]float64{}
		for _, smp := range fb.Samples {
			bySeries[smp.Name+"{"+smp.Labels+"}"] = smp.Value
		}
		for _, smp := range fa.Samples {
			key := smp.Name + "{" + smp.Labels + "}"
			later, ok := bySeries[key]
			if !ok {
				return fmt.Errorf("counter series %s disappeared between scrapes", key)
			}
			if later < smp.Value {
				return fmt.Errorf("counter series %s went backwards: %g -> %g", key, smp.Value, later)
			}
		}
	}
	return nil
}
