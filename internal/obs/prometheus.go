package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric family in the
// Prometheus text exposition format (version 0.0.4): HELP/TYPE
// comments, counters and gauges as single samples, histograms as
// cumulative _bucket{le=...} series plus _sum and _count. Durations are
// exposed in seconds, the Prometheus convention. Families are emitted
// in name order, so two scrapes of an idle registry are byte-identical.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, fam := range r.families() {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, escapeHelp(fam.help), fam.name, fam.kind)
		switch {
		case fam.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", fam.name, fam.counter.Load())
		case fam.counterFn != nil:
			fmt.Fprintf(&b, "%s %d\n", fam.name, fam.counterFn())
		case fam.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", fam.name, formatFloat(fam.gaugeFn()))
		case fam.labeledFn != nil:
			writeLabeledInts(&b, fam.name, fam.label, fam.labeledFn())
		case fam.vec != nil:
			writeLabeledInts(&b, fam.name, fam.label, fam.vec.Snapshot())
		case fam.hist != nil:
			writeHistogram(&b, fam.name, "", "", fam.hist.Snapshot())
		case fam.histVec != nil:
			snaps := fam.histVec.Snapshot()
			for _, label := range sortedKeys(snaps) {
				writeHistogram(&b, fam.name, fam.label, label, snaps[label])
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeLabeledInts(b *strings.Builder, name, label string, samples map[string]int64) {
	for _, k := range sortedKeys(samples) {
		fmt.Fprintf(b, "%s{%s=\"%s\"} %d\n", name, label, escapeLabel(k), samples[k])
	}
}

// writeHistogram emits the cumulative bucket series, sum and count of
// one histogram, with bucket bounds converted from nanoseconds to
// seconds. label/labelValue are empty for unlabeled histograms.
func writeHistogram(b *strings.Builder, name, label, labelValue string, s HistSnapshot) {
	lbl := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return fmt.Sprintf("{%s=\"%s\"}", label, escapeLabel(labelValue))
		default:
			return fmt.Sprintf("{%s=\"%s\",%s}", label, escapeLabel(labelValue), extra)
		}
	}
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		le := formatFloat(float64(bound) / 1e9)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, lbl(`le="`+le+`"`), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, lbl(`le="+Inf"`), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, lbl(""), formatFloat(float64(s.Sum)/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, lbl(""), s.Count)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
