package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage inside a trace. Parent names the enclosing
// span ("" for top-level stages), so a flat span list carries the tree.
// Offsets are relative to the trace start.
type Span struct {
	Name    string `json:"name"`
	Parent  string `json:"parent,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Trace is one request's span record: an ID, a name, and the stage
// timings instrumented code appended while it ran. A nil Trace is a
// valid no-op, so pipeline code records spans unconditionally and
// construction decides whether tracing is on. Span recording is
// mutex-guarded (spans can end on pool workers); the cost is one short
// critical section per stage, not per pair.
type Trace struct {
	id    string
	name  string
	start time.Time

	mu     sync.Mutex
	spans  []Span
	durNS  int64
	status int
}

// NewTrace starts a standalone trace (no tracer ring behind it) — the
// CLI tools use this to collect stage timings without a server.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// ID returns the trace's request ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan begins a top-level span; the returned func ends it.
func (t *Trace) StartSpan(name string) func() {
	return t.StartSpanUnder("", name)
}

// StartSpanUnder begins a span nested (by name) under parent; the
// returned func ends it. Safe on a nil trace: both halves are no-ops.
func (t *Trace) StartSpanUnder(parent, name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{
			Name:    name,
			Parent:  parent,
			StartNS: begin.Sub(t.start).Nanoseconds(),
			DurNS:   end.Sub(begin).Nanoseconds(),
		})
		t.mu.Unlock()
	}
}

// finish stamps the total duration and status.
func (t *Trace) finish(status int) {
	t.mu.Lock()
	t.durNS = time.Since(t.start).Nanoseconds()
	t.status = status
	t.mu.Unlock()
}

// TraceView is the immutable JSON view of a finished (or in-flight)
// trace.
type TraceView struct {
	ID     string    `json:"id"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	DurNS  int64     `json:"dur_ns"`
	DurMS  float64   `json:"dur_ms"`
	Status int       `json:"status,omitempty"`
	Spans  []Span    `json:"spans,omitempty"`
}

// Snapshot copies the trace (zero view on nil).
func (t *Trace) Snapshot() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID:     t.id,
		Name:   t.name,
		Start:  t.start,
		DurNS:  t.durNS,
		DurMS:  float64(t.durNS) / 1e6,
		Status: t.status,
		Spans:  append([]Span(nil), t.spans...),
	}
	return v
}

type ctxKey struct{}

// NewContext returns ctx carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil (a no-op trace).
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Tracer mints request traces, retains a bounded ring of the most
// recent finished ones, and writes structured JSON log lines for slow
// requests (always, above SlowThreshold) and for every request (when
// AccessLog is set). A nil Tracer is fully inert.
type Tracer struct {
	// SlowThreshold is the duration above which a finished trace is
	// logged with its span timings; 0 disables slow logging.
	SlowThreshold time.Duration
	// AccessLog logs one line per finished trace regardless of
	// duration.
	AccessLog bool
	// Out receives the log lines (defaults to os.Stderr). Writes are
	// serialized by the tracer.
	Out io.Writer

	seq atomic.Int64
	mu  sync.Mutex
	// ringCap is immutable after NewTracer; the fast paths read it
	// without tr.mu, so they must not touch the ring slice header
	// itself (append rewrites it under the lock).
	ringCap int
	ring    []*Trace
	next    int
}

// NewTracer returns a tracer retaining the last ringSize finished
// traces (ringSize <= 0 retains none; the tracer still logs).
func NewTracer(ringSize int) *Tracer {
	t := &Tracer{}
	if ringSize > 0 {
		t.ringCap = ringSize
		t.ring = make([]*Trace, 0, ringSize)
	}
	return t
}

// Start mints a new trace with the next request ID. Nil-safe: a nil
// tracer returns a nil trace.
func (tr *Tracer) Start(name string) *Trace {
	if tr == nil {
		return nil
	}
	t := NewTrace(name)
	t.id = fmt.Sprintf("r-%d", tr.seq.Add(1))
	return t
}

// Finish stamps the trace, retains it in the ring, and emits the
// access/slow log lines. Safe with a nil tracer or nil trace.
func (tr *Tracer) Finish(t *Trace, status int) {
	if tr == nil || t == nil {
		return
	}
	t.finish(status)
	if tr.ringCap > 0 {
		tr.mu.Lock()
		if len(tr.ring) < tr.ringCap {
			tr.ring = append(tr.ring, t)
		} else {
			tr.ring[tr.next] = t
			tr.next = (tr.next + 1) % tr.ringCap
		}
		tr.mu.Unlock()
	}
	slow := tr.SlowThreshold > 0 && time.Duration(t.durNS) > tr.SlowThreshold
	if !slow && !tr.AccessLog {
		return
	}
	v := t.Snapshot()
	if !slow {
		v.Spans = nil // access-log lines stay one-screen; spans are in the ring
	}
	line := struct {
		TS    time.Time `json:"ts"`
		Level string    `json:"level"`
		Msg   string    `json:"msg"`
		TraceView
	}{TS: time.Now(), Level: "info", Msg: "request", TraceView: v}
	if slow {
		line.Level = "warn"
		line.Msg = "slow request"
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	out := tr.Out
	if out == nil {
		out = os.Stderr
	}
	tr.mu.Lock()
	_, _ = out.Write(b)
	tr.mu.Unlock()
}

// Recent returns snapshots of the retained traces, most recent first
// (nil when nothing is retained).
func (tr *Tracer) Recent() []TraceView {
	if tr == nil || tr.ringCap == 0 {
		return nil
	}
	tr.mu.Lock()
	n := len(tr.ring)
	ordered := make([]*Trace, 0, n)
	// Before the ring wraps the tail of the slice is the most recent;
	// after wrapping, ring[next-1] is.
	for i := 0; i < n; i++ {
		idx := n - 1 - i
		if n == tr.ringCap {
			idx = ((tr.next-1-i)%n + n) % n
		}
		ordered = append(ordered, tr.ring[idx])
	}
	tr.mu.Unlock()
	out := make([]TraceView, len(ordered))
	for i, t := range ordered {
		out[i] = t.Snapshot()
	}
	return out
}
