package obs

import (
	"math"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucketing rule: bounds are
// inclusive upper bounds, one past the bound falls into the next
// bucket, and everything beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogramBounds([]int64{100, 200, 400})
	h.Observe(0)                      // bucket 0
	h.Observe(100)                    // bucket 0 (inclusive)
	h.Observe(101)                    // bucket 1
	h.Observe(200)                    // bucket 1
	h.Observe(399)                    // bucket 2
	h.Observe(400)                    // bucket 2
	h.Observe(401)                    // +Inf
	h.Observe(time.Duration(1 << 40)) // +Inf
	h.Observe(time.Duration(-5))      // clamps to 0, bucket 0
	want := []int64{3, 2, 2, 2}       // per-bucket, last is +Inf
	s := h.Snapshot()
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 9 {
		t.Errorf("count = %d, want 9", s.Count)
	}
	if wantSum := int64(0 + 100 + 101 + 200 + 399 + 400 + 401 + 1<<40 + 0); s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

// TestHistogramQuantile checks the interpolated quantile estimates on a
// uniform fill: 100 observations spread evenly through one bucket must
// put p50 near the bucket's middle.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogramBounds([]int64{1000, 2000, 4000})
	// 100 observations uniform in (1000, 2000]: all land in bucket 1.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(1000 + i*10))
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 < 1400 || p50 > 1600 {
		t.Errorf("p50 = %v, want ~1500ns", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 1900 || p99 > 2000 {
		t.Errorf("p99 = %v, want ~1990ns", p99)
	}
	// Quantiles of an empty histogram and of the +Inf bucket.
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	overflow := NewHistogramBounds([]int64{10})
	overflow.Observe(1 << 30)
	if q := overflow.Snapshot().Quantile(0.5); q != 10 {
		t.Errorf("+Inf quantile = %v, want the last finite bound (10ns)", q)
	}
}

// TestHistogramQuantileAcrossBuckets spreads mass over several buckets
// and checks the rank lands in the right one.
func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	h := NewHistogramBounds([]int64{100, 200, 300, 400})
	for i := 0; i < 10; i++ {
		h.Observe(50)  // bucket 0
		h.Observe(150) // bucket 1
		h.Observe(250) // bucket 2
		h.Observe(350) // bucket 3
	}
	s := h.Snapshot()
	cases := []struct {
		q      float64
		lo, hi time.Duration
	}{
		{0.25, 0, 100},
		{0.50, 100, 200},
		{0.75, 200, 300},
		{1.00, 300, 400},
	}
	for _, c := range cases {
		got := s.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("q=%g: got %v, want in [%v, %v]", c.q, got, c.lo, c.hi)
		}
	}
}

// TestHistogramMerge checks merge correctness (counts, sum, quantiles
// computed over the union) and the layout-mismatch guard.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	for i := 0; i < 50; i++ {
		a.Observe(100 * time.Microsecond)
		b.Observe(10 * time.Millisecond)
	}
	s := a.Snapshot()
	if !s.Merge(b.Snapshot()) {
		t.Fatal("same-layout merge refused")
	}
	if s.Count != 100 {
		t.Fatalf("merged count = %d, want 100", s.Count)
	}
	wantSum := int64(50)*int64(100*time.Microsecond) + int64(50)*int64(10*time.Millisecond)
	if s.Sum != wantSum {
		t.Fatalf("merged sum = %d, want %d", s.Sum, wantSum)
	}
	// Median of a 50/50 split across two far-apart buckets sits at the
	// low side's bucket; p99 must be in the high side's.
	if p99 := s.Quantile(0.99); p99 < 5*time.Millisecond {
		t.Errorf("merged p99 = %v, want >= 5ms", p99)
	}
	if p25 := s.Quantile(0.25); p25 > time.Millisecond {
		t.Errorf("merged p25 = %v, want <= 1ms", p25)
	}

	// Mismatched layouts must refuse to merge.
	odd := NewHistogramBounds([]int64{1, 2, 3})
	odd.Observe(1)
	s2 := a.Snapshot()
	if s2.Merge(odd.Snapshot()) {
		t.Error("mismatched-layout merge accepted")
	}

	// Merging into an empty snapshot adopts the other layout.
	var empty HistSnapshot
	if !empty.Merge(a.Snapshot()) || empty.Count != 50 {
		t.Errorf("merge into empty: count = %d, want 50", empty.Count)
	}
	// Merging an empty snapshot is a no-op that succeeds.
	if !s2.Merge(HistSnapshot{}) {
		t.Error("merging empty snapshot refused")
	}
}

// TestHistogramNilSafety: every method must be inert on nil.
func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	h.Since(time.Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var v *HistogramVec
	v.With("x").Observe(time.Second)
	if v.Snapshot() != nil {
		t.Fatal("nil vec snapshot not nil")
	}
	if math.IsNaN(float64((HistSnapshot{}).Mean())) {
		t.Fatal("empty mean NaN")
	}
}
