package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryIdempotentRegistration: registering the same name twice
// returns the same instance, so packages share metrics without
// coordination.
func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "")
	c2 := r.Counter("x_total", "other help")
	if c1 != c2 {
		t.Fatal("re-registered counter is a different instance")
	}
	h1 := r.Histogram("lat_seconds", "")
	h2 := r.Histogram("lat_seconds", "")
	if h1 != h2 {
		t.Fatal("re-registered histogram is a different instance")
	}
	v1 := r.HistogramVec("vec_seconds", "", "k")
	v2 := r.HistogramVec("vec_seconds", "", "k")
	if v1 != v2 {
		t.Fatal("re-registered histogram vec is a different instance")
	}
}

// TestDisabledRegistry: the nil registry and every handle it returns
// must be inert, including snapshotting and exposition.
func TestDisabledRegistry(t *testing.T) {
	r := Disabled
	r.Counter("a_total", "").Add(5)
	r.CounterVec("b_total", "", "k").With("v").Inc()
	r.Histogram("c_seconds", "").Observe(time.Second)
	r.HistogramVec("d_seconds", "", "k").With("v").Since(time.Now())
	r.CounterFunc("e_total", "", func() int64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.LabeledCounterFunc("g_total", "", "k", func() map[string]int64 { return nil })
	if r.Uptime() != 0 {
		t.Fatal("nil registry reports uptime")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition wrote %q, err %v", sb.String(), err)
	}
	var c *Counter
	c.Inc()
	c.Add(10)
	if c.Load() != 0 {
		t.Fatal("nil counter holds a value")
	}
}

// TestRegistryConcurrentHammer drives counters, vecs and histograms
// from many goroutines while snapshots and expositions run, relying on
// -race to flag unsynchronized access, and on the totals to prove no
// lost updates.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	vec := r.CounterVec("by_label_total", "", "k")
	h := r.Histogram("lat_seconds", "")
	hv := r.HistogramVec("lat_by_label_seconds", "", "k")
	r.GaugeFunc("g", "", func() float64 { return 1.5 })
	r.LabeledCounterFunc("ext_total", "", "k", func() map[string]int64 {
		return map[string]int64{"a": 1, "b": 2}
	})

	const workers = 8
	const perWorker = 2000
	labels := []string{"alpha", "beta", "gamma", "delta"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				lbl := labels[(w+i)%len(labels)]
				vec.With(lbl).Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				hv.With(lbl).Observe(time.Duration(i) * time.Microsecond)
				if i%500 == 0 {
					_ = r.WritePrometheus(io.Discard)
					_ = h.Snapshot()
					_ = vec.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter lost updates: %d, want %d", got, workers*perWorker)
	}
	var vecSum int64
	for _, v := range vec.Snapshot() {
		vecSum += v
	}
	if vecSum != workers*perWorker {
		t.Fatalf("vec lost updates: %d, want %d", vecSum, workers*perWorker)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram lost updates: %d, want %d", s.Count, workers*perWorker)
	}
	var hvSum int64
	for _, s := range hv.Snapshot() {
		hvSum += s.Count
	}
	if hvSum != workers*perWorker {
		t.Fatalf("histogram vec lost updates: %d, want %d", hvSum, workers*perWorker)
	}
}
