package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.Start("POST /v1/match")
	if trace.ID() == "" {
		t.Fatal("no request id")
	}
	end := trace.StartSpan("parent")
	endChild := trace.StartSpanUnder("parent", "child")
	time.Sleep(time.Millisecond)
	endChild()
	end()
	tr.Finish(trace, 200)

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(recent))
	}
	v := recent[0]
	if v.Status != 200 || v.DurNS <= 0 {
		t.Fatalf("trace view = %+v", v)
	}
	if len(v.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(v.Spans))
	}
	// Spans end in completion order: child first.
	if v.Spans[0].Name != "child" || v.Spans[0].Parent != "parent" {
		t.Fatalf("child span = %+v", v.Spans[0])
	}
	if v.Spans[1].Name != "parent" || v.Spans[1].DurNS < v.Spans[0].DurNS {
		t.Fatalf("parent span = %+v (child %+v)", v.Spans[1], v.Spans[0])
	}
}

func TestTracerRingBoundedAndOrdered(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		trace := tr.Start(fmt.Sprintf("req-%d", i))
		tr.Finish(trace, 200)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, v := range recent {
		if want := fmt.Sprintf("req-%d", 9-i); v.Name != want {
			t.Fatalf("recent[%d] = %s, want %s", i, v.Name, want)
		}
	}
}

func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4)
	tr.SlowThreshold = time.Microsecond
	tr.Out = &buf

	trace := tr.Start("slow one")
	end := trace.StartSpan("stage")
	time.Sleep(2 * time.Millisecond)
	end()
	tr.Finish(trace, 200)

	fast := tr.Start("fast one")
	tr.Finish(fast, 200) // sub-threshold runs are possible but not guaranteed; only assert the slow line

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var found bool
	for _, ln := range lines {
		var rec struct {
			Level string  `json:"level"`
			Msg   string  `json:"msg"`
			Name  string  `json:"name"`
			Spans []Span  `json:"spans"`
			DurMS float64 `json:"dur_ms"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", ln, err)
		}
		if rec.Name == "slow one" {
			found = true
			if rec.Level != "warn" || rec.Msg != "slow request" {
				t.Fatalf("slow line = %+v", rec)
			}
			if len(rec.Spans) != 1 || rec.Spans[0].Name != "stage" {
				t.Fatalf("slow line spans = %+v", rec.Spans)
			}
			if rec.DurMS < 1 {
				t.Fatalf("slow line dur_ms = %g", rec.DurMS)
			}
		}
	}
	if !found {
		t.Fatalf("no slow-request line in %q", buf.String())
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(0) // no ring; logging still works
	tr.AccessLog = true
	tr.Out = &buf
	trace := tr.Start("GET /healthz")
	tr.Finish(trace, 200)
	var rec struct {
		Level  string `json:"level"`
		Msg    string `json:"msg"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("unparseable access line %q: %v", buf.String(), err)
	}
	if rec.Level != "info" || rec.Msg != "request" || rec.Status != 200 {
		t.Fatalf("access line = %+v", rec)
	}
	if tr.Recent() != nil {
		t.Fatal("ring disabled but traces retained")
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carries a trace")
	}
	trace := NewTrace("x")
	ctx := NewContext(context.Background(), trace)
	if FromContext(ctx) != trace {
		t.Fatal("trace lost in context round-trip")
	}
	// A nil trace does not pollute the context.
	if FromContext(NewContext(context.Background(), nil)) != nil {
		t.Fatal("nil trace stored in context")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var trace *Trace
	trace.StartSpan("x")()
	trace.StartSpanUnder("p", "x")()
	_ = trace.Snapshot()
	_ = trace.ID()
	var tr *Tracer
	if tr.Start("x") != nil {
		t.Fatal("nil tracer minted a trace")
	}
	tr.Finish(nil, 200)
	if tr.Recent() != nil {
		t.Fatal("nil tracer has recents")
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines; -race
// is the assertion.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	tr.AccessLog = true
	tr.Out = &syncDiscard{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				trace := tr.Start("r")
				end := trace.StartSpan("s")
				end()
				tr.Finish(trace, 200)
				if i%50 == 0 {
					tr.Recent()
				}
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Recent()); got != 16 {
		t.Fatalf("ring holds %d, want 16", got)
	}
}

type syncDiscard struct{}

func (*syncDiscard) Write(p []byte) (int, error) { return len(p), nil }
