package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/obs/promtest"
)

func populatedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", "total requests").Add(7)
	r.CounterFunc("external_total", "externally owned", func() int64 { return 42 })
	r.GaugeFunc("temperature", "a gauge", func() float64 { return 1.5 })
	r.LabeledCounterFunc("by_dataset_total", "per dataset", "dataset", func() map[string]int64 {
		return map[string]int64{"D1": 3, "D2": 5}
	})
	vec := r.CounterVec("by_class_total", "per status class", "class")
	vec.With("2xx").Add(10)
	vec.With("5xx").Add(1)
	h := r.Histogram("request_seconds", "request latency")
	h.Observe(75 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Minute) // +Inf bucket
	hv := r.HistogramVec("match_seconds", "per algorithm", "algorithm")
	hv.With("CNC").Observe(time.Millisecond)
	hv.With(`we"ird\label`).Observe(time.Second)
	return r
}

// TestPrometheusExposition renders a fully populated registry and runs
// it through the validating parser: every line parses, families are
// unique, histogram buckets are cumulative and +Inf-terminated.
func TestPrometheusExposition(t *testing.T) {
	r := populatedRegistry()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	scrape, err := promtest.Parse(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	wantFam := map[string]string{
		"requests_total":   "counter",
		"external_total":   "counter",
		"temperature":      "gauge",
		"by_dataset_total": "counter",
		"by_class_total":   "counter",
		"request_seconds":  "histogram",
		"match_seconds":    "histogram",
	}
	for name, typ := range wantFam {
		fam, ok := scrape.Families[name]
		if !ok {
			t.Fatalf("family %q missing", name)
		}
		if fam.Type != typ {
			t.Fatalf("family %q type %q, want %q", name, fam.Type, typ)
		}
	}
	// Spot-check values.
	if got := scrape.Families["requests_total"].Samples[0].Value; got != 7 {
		t.Errorf("requests_total = %g", got)
	}
	if got := scrape.Families["external_total"].Samples[0].Value; got != 42 {
		t.Errorf("external_total = %g", got)
	}
	// The histogram's _count must equal the observations.
	for _, s := range scrape.Families["request_seconds"].Samples {
		if s.Name == "request_seconds_count" && s.Value != 3 {
			t.Errorf("request_seconds_count = %g, want 3", s.Value)
		}
	}
	// Label escaping survived the round trip.
	if !strings.Contains(text, `we\"ird\\label`) {
		t.Errorf("escaped label missing from exposition:\n%s", text)
	}
	// Families are emitted in sorted order, so scrapes are stable.
	for i := 1; i < len(scrape.Order); i++ {
		if scrape.Order[i-1] >= scrape.Order[i] {
			t.Errorf("families not sorted: %q before %q", scrape.Order[i-1], scrape.Order[i])
		}
	}
}

// TestPrometheusMonotonic scrapes twice around counter increments and
// checks the parser's monotonicity validator both ways.
func TestPrometheusMonotonic(t *testing.T) {
	r := populatedRegistry()
	scrapeNow := func() *promtest.Scrape {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		s, err := promtest.Parse(sb.String())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := scrapeNow()
	r.Counter("requests_total", "").Add(5)
	r.CounterVec("by_class_total", "", "class").With("2xx").Inc()
	b := scrapeNow()
	if err := promtest.CheckMonotonic(a, b); err != nil {
		t.Fatalf("monotonic counters flagged: %v", err)
	}
	if err := promtest.CheckMonotonic(b, a); err == nil {
		t.Fatal("reversed scrapes (decreasing counters) not flagged")
	}
}

// TestPromtestRejectsMalformed: the parser must catch the failure
// modes the CI job guards against.
func TestPromtestRejectsMalformed(t *testing.T) {
	bad := []struct {
		name, text string
	}{
		{"garbage line", "# HELP x h\n# TYPE x counter\nx{ 1\n"},
		{"duplicate family", "# HELP x h\n# TYPE x counter\nx 1\n# HELP x h\n# TYPE x counter\nx 2\n"},
		{"duplicate series", "# HELP x h\n# TYPE x counter\nx 1\nx 2\n"},
		{"sample without family", "y 1\n"},
		{"non-cumulative histogram", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n"},
		{"histogram missing +Inf", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n"},
		{"bad value", "# HELP x h\n# TYPE x counter\nx one\n"},
	}
	for _, c := range bad {
		if _, err := promtest.Parse(c.text); err == nil {
			t.Errorf("%s: accepted\n%s", c.name, c.text)
		}
	}
}
