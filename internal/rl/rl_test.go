package rl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/graph"
)

func randomGraph(rng *rand.Rand, n1, n2, m int) *graph.Bipartite {
	b := graph.NewBuilder(n1, n2)
	for i := 0; i < m; i++ {
		b.Add(int32(rng.Intn(n1)), int32(rng.Intn(n2)), rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestQMatcherValidMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, rng.Intn(15)+1, rng.Intn(15)+1, rng.Intn(80))
		th := rng.Float64() * 0.6
		pairs := NewQMatcher(seed).Match(g, th)
		return core.ValidateMatching(g, pairs, th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQMatcherDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 20, 20, 120)
	m := NewQMatcher(7)
	if !reflect.DeepEqual(m.Match(g, 0.2), m.Match(g, 0.2)) {
		t.Fatal("QMatcher not deterministic for a fixed seed")
	}
}

func TestQMatcherEmptyAndPruned(t *testing.T) {
	g := graph.NewBuilder(3, 3).MustBuild()
	if got := NewQMatcher(1).Match(g, 0.5); len(got) != 0 {
		t.Fatalf("empty graph: %v", got)
	}
	b := graph.NewBuilder(1, 1)
	b.Add(0, 0, 0.4)
	g2 := b.MustBuild()
	if got := NewQMatcher(1).Match(g2, 0.5); len(got) != 0 {
		t.Fatalf("sub-threshold edge matched: %v", got)
	}
}

// On graphs with a clear structure the learned policy should find most
// of the matched weight that the exact algorithm finds; because its
// greedy special case is UMC, it should rarely fall far below half the
// optimum (the UMC guarantee).
func TestQMatcherWeightQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 15, 15, 90)
		opt := core.TotalWeight(core.Hungarian{}.Match(g, 0))
		got := core.TotalWeight(NewQMatcher(int64(trial)).Match(g, 0))
		if got < 0.5*opt {
			t.Fatalf("trial %d: learned weight %.3f below half of optimal %.3f",
				trial, got, opt)
		}
	}
}

// The Q-matcher's accept-biased policy keeps the top-weighted edge, like
// the greedy family.
func TestQMatcherKeepsTopEdge(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.Add(0, 0, 0.9)
	b.Add(1, 1, 0.4)
	g := b.MustBuild()
	pairs := NewQMatcher(3).Match(g, 0.1)
	found := false
	for _, p := range pairs {
		if p.U == 0 && p.V == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("top edge not matched: %v", pairs)
	}
}
