// Package rl implements the reinforcement-learning approach to bipartite
// graph matching that the paper's related work describes (Wang et al.,
// "Adaptive Dynamic Bipartite Graph Matching: A Reinforcement Learning
// Approach", ICDE 2019) and explicitly defers to future work: a
// Q-learning agent whose state is the pair (|L|, |R|) of already-matched
// node counts and whose reward is the weight of the matches it selects.
//
// The adaptation to the static CCER setting processes the above-threshold
// edges in descending weight, like UMC, but lets a learned policy decide
// per edge whether to accept it or skip it in the hope of a better
// configuration later. Training needs no labels — the reward is the
// matched weight, exactly as in Wang et al. — so the matcher stays
// learning-free in the paper's sense (no ground-truth pruning model).
//
// This package is an extension beyond the paper's evaluated algorithms;
// it exists so the future-work experiment can be run, and its tests
// compare the learned policy against UMC (its greedy special case) and
// the exact optimum.
package rl

import (
	"math/rand"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/graph"
)

// QMatcher is a tabular Q-learning bipartite matcher. The zero value is
// not useful; use NewQMatcher for sensible defaults.
type QMatcher struct {
	// Episodes is the number of training episodes over the edge stream.
	Episodes int
	// Alpha is the learning rate in (0,1].
	Alpha float64
	// Gamma is the discount factor in [0,1].
	Gamma float64
	// Epsilon is the exploration rate of the ε-greedy behavior policy.
	Epsilon float64
	// Buckets discretizes the matched-fraction state dimensions.
	Buckets int
	// Seed makes training reproducible.
	Seed int64
}

// NewQMatcher returns a QMatcher with defaults that converge quickly on
// the corpus graph sizes used in this repository.
func NewQMatcher(seed int64) QMatcher {
	return QMatcher{
		Episodes: 30,
		Alpha:    0.2,
		Gamma:    0.95,
		Epsilon:  0.15,
		Buckets:  8,
		Seed:     seed,
	}
}

// Name implements core.Matcher.
func (QMatcher) Name() string { return "QLM" }

// CloneMatcher implements core.Cloner. The Q-table and the rand.Rand are
// created inside Match, so the value copy is an independent matcher with
// identical behavior at the same seed.
func (q QMatcher) CloneMatcher() core.Matcher { return q }

const numActions = 2 // 0 = skip, 1 = accept

// Match implements core.Matcher: it trains the Q-table on the graph's
// own edge stream and then runs the greedy learned policy.
func (q QMatcher) Match(g *graph.Bipartite, t float64) []core.Pair {
	episodes := q.Episodes
	if episodes <= 0 {
		episodes = 30
	}
	buckets := q.Buckets
	if buckets <= 0 {
		buckets = 8
	}
	alpha, gamma, eps := q.Alpha, q.Gamma, q.Epsilon
	if alpha <= 0 {
		alpha = 0.2
	}
	if gamma <= 0 {
		gamma = 0.95
	}

	// The edge stream: above-threshold edges in descending weight.
	var stream []graph.Edge
	for _, ei := range g.EdgesByWeight() {
		e := g.Edge(ei)
		if e.W <= t {
			break
		}
		stream = append(stream, e)
	}
	if len(stream) == 0 {
		return nil
	}

	// State: (bucketized |L|/|V1|, bucketized |R|/|V2|, weight bucket).
	stateOf := func(matched1, matched2 int, w float64) int {
		b1 := matched1 * buckets / (g.N1() + 1)
		b2 := matched2 * buckets / (g.N2() + 1)
		bw := int(w * float64(buckets-1))
		return (b1*buckets+b2)*buckets + bw
	}
	qtab := make([]float64, buckets*buckets*buckets*numActions)

	rng := rand.New(rand.NewSource(q.Seed))
	run := func(train bool) []core.Pair {
		matched1 := make([]bool, g.N1())
		matched2 := make([]bool, g.N2())
		n1, n2 := 0, 0
		var pairs []core.Pair
		prevState, prevAction := -1, 0
		prevReward := 0.0
		for _, e := range stream {
			if matched1[e.U] || matched2[e.V] {
				continue // not a decision point
			}
			s := stateOf(n1, n2, e.W)
			var a int
			if train && rng.Float64() < eps {
				a = rng.Intn(numActions)
			} else if qtab[s*numActions+1] >= qtab[s*numActions] {
				a = 1 // accept on ties: the optimistic default
			}
			if train && prevState >= 0 {
				// One-step Q-learning update for the previous decision.
				best := qtab[s*numActions]
				if qtab[s*numActions+1] > best {
					best = qtab[s*numActions+1]
				}
				idx := prevState*numActions + prevAction
				qtab[idx] += alpha * (prevReward + gamma*best - qtab[idx])
			}
			reward := 0.0
			if a == 1 {
				matched1[e.U], matched2[e.V] = true, true
				n1++
				n2++
				reward = e.W
				pairs = append(pairs, core.Pair{U: e.U, V: e.V, W: e.W})
			}
			prevState, prevAction, prevReward = s, a, reward
		}
		if train && prevState >= 0 {
			idx := prevState*numActions + prevAction
			qtab[idx] += alpha * (prevReward - qtab[idx]) // terminal update
		}
		return pairs
	}

	for ep := 0; ep < episodes; ep++ {
		run(true)
	}
	pairs := run(false)
	core.SortPairs(pairs)
	return pairs
}
