package vector

import "github.com/ccer-go/ccer/internal/repcache"

// SpaceCache is the cross-build bag-model representation cache: whole
// Spaces (document vectors, DFs, IDF, and — once first used — the
// lazily built TF-IDF caches and postings) keyed by content hash of the
// mode and both collections' texts. Spaces are immutable for readers
// and safe for concurrent use, so a resident service regenerating
// graphs for the same dataset reuses one Space per mode instead of
// re-extracting every gram. A nil *SpaceCache builds uncached.
type SpaceCache struct {
	c *repcache.Cache[*Space]
}

// NewSpaceCache returns a cache bounded to maxEntries resident Spaces.
func NewSpaceCache(maxEntries int) *SpaceCache {
	return &SpaceCache{c: repcache.New[*Space](maxEntries)}
}

// Get returns the Space of the two collections under the mode, building
// it on a miss. toks1/toks2 follow NewSpaceTokens and may be nil.
func (c *SpaceCache) Get(mode Mode, texts1, texts2 []string, toks1, toks2 [][]string) *Space {
	if c == nil {
		return newSpace(mode, texts1, texts2, toks1, toks2)
	}
	h := repcache.NewHasher(0xba6 ^ uint64(mode.N)<<16)
	if mode.Char {
		h.Uint64(1)
	} else {
		h.Uint64(2)
	}
	h.Strings(texts1)
	h.Strings(texts2)
	s, _ := c.c.GetOrBuild(h.Key(), func() *Space {
		return newSpace(mode, texts1, texts2, toks1, toks2)
	})
	return s
}

// Stats returns cumulative hits, misses and evictions.
func (c *SpaceCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.c.Stats()
}

// Len returns the resident entry count.
func (c *SpaceCache) Len() int {
	if c == nil {
		return 0
	}
	return c.c.Len()
}
