package vector

import (
	"math"
	"math/rand"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/strsim"
)

func approx(t *testing.T, got, want float64, name string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("joe", 2)
	want := []string{"jo", "oe"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("CharNGrams = %v, want %v", got, want)
	}
	if got := CharNGrams("ab", 3); len(got) != 1 || got[0] != "ab" {
		t.Fatalf("short string grams = %v, want [ab]", got)
	}
	if got := CharNGrams("", 2); got != nil {
		t.Fatalf("empty string grams = %v", got)
	}
	// "Joe Biden" has seven character 3-grams, as in the paper's example.
	if got := CharNGrams("Joe Biden", 3); len(got) != 7 {
		t.Fatalf("character 3-grams of 'Joe Biden': %d, want 7", len(got))
	}
}

func TestTokenNGrams(t *testing.T) {
	got := TokenNGrams([]string{"joe", "biden", "president"}, 2)
	if len(got) != 2 || got[0] != "joe biden" || got[1] != "biden president" {
		t.Fatalf("TokenNGrams = %v", got)
	}
	if got := TokenNGrams([]string{"joe"}, 2); len(got) != 1 || got[0] != "joe" {
		t.Fatalf("short token grams = %v", got)
	}
}

func TestModes(t *testing.T) {
	ms := Modes()
	if len(ms) != 6 {
		t.Fatalf("Modes: %d, want 6", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.String()] = true
	}
	for _, want := range []string{"char2", "char3", "char4", "token1", "token2", "token3"} {
		if !names[want] {
			t.Fatalf("missing mode %s in %v", want, names)
		}
	}
}

func TestVecOps(t *testing.T) {
	a := Vec{IDs: []int32{0, 2, 5}, Ws: []float64{1, 2, 3}}
	b := Vec{IDs: []int32{2, 5, 7}, Ws: []float64{4, 1, 2}}
	approx(t, Dot(a, b), 2*4+3*1, "Dot")
	approx(t, a.Norm(), math.Sqrt(1+4+9), "Norm")
	approx(t, Cosine(a, a), 1, "Cosine self")
	approx(t, JaccardSet(a, b), 2.0/4.0, "JaccardSet")
	approx(t, GeneralizedJaccard(a, a), 1, "GenJaccard self")
	// GenJaccard by hand: min: ids 2,5 -> 2,1 = 3; max: 1+4+3+2 = 10.
	approx(t, GeneralizedJaccard(a, b), 3.0/10.0, "GenJaccard")
	empty := Vec{}
	approx(t, Cosine(a, empty), 0, "Cosine empty")
	approx(t, JaccardSet(empty, empty), 1, "JaccardSet both empty")
}

func newTestSpace(mode Mode) *Space {
	return NewSpace(mode,
		[]string{"green apple pie", "red onion soup", "blue fish"},
		[]string{"green apple tart", "red onion soup", "chocolate cake"},
	)
}

func TestSpaceIdenticalDocs(t *testing.T) {
	for _, mode := range Modes() {
		s := newTestSpace(mode)
		for _, m := range Measures() {
			// doc 1 of each collection is identical text.
			sim := s.Sim(m, 1, 1)
			if m == MeasureARCS {
				// ARCS is not self-normalized: it rewards rarity of the
				// shared grams, so identical docs just score positively.
				if sim <= 0 || sim > 1 {
					t.Fatalf("%s/ARCS identical docs sim = %v, want in (0,1]", mode, sim)
				}
				continue
			}
			if math.Abs(sim-1) > 1e-9 {
				t.Fatalf("%s/%s identical docs sim = %v, want 1", mode, m, sim)
			}
		}
	}
}

func TestSpaceDisjointDocs(t *testing.T) {
	s := newTestSpace(Mode{Char: false, N: 1})
	// "blue fish" vs "chocolate cake" share no tokens.
	for _, m := range Measures() {
		if sim := s.Sim(m, 2, 2); sim != 0 {
			t.Fatalf("%s disjoint docs sim = %v, want 0", m, sim)
		}
	}
}

func TestSpaceRelativeOrder(t *testing.T) {
	s := newTestSpace(Mode{Char: false, N: 1})
	for _, m := range Measures() {
		match := s.Sim(m, 0, 0)    // "green apple pie" vs "green apple tart"
		nonmatch := s.Sim(m, 0, 2) // vs "chocolate cake"
		if match <= nonmatch {
			t.Fatalf("%s: match %v <= non-match %v", m, match, nonmatch)
		}
	}
}

func TestTFIDFDiscountsCommonGrams(t *testing.T) {
	// "the" appears everywhere; "zebra" only in the matching pair.
	s := NewSpace(Mode{Char: false, N: 1},
		[]string{"the zebra", "the lion", "the ant"},
		[]string{"the zebra", "the bear", "the wasp"},
	)
	tfidfMatch := s.Sim(MeasureCosineTFIDF, 0, 0)
	tfidfShared := s.Sim(MeasureCosineTFIDF, 1, 1) // only "the" shared
	if tfidfShared >= tfidfMatch {
		t.Fatalf("TF-IDF did not discount the stop word: %v >= %v", tfidfShared, tfidfMatch)
	}
	tfShared := s.Sim(MeasureCosineTF, 1, 1)
	if tfidfShared >= tfShared {
		t.Fatalf("TF-IDF weight for stop-word-only pair (%v) should be below TF (%v)",
			tfidfShared, tfShared)
	}
}

func TestARCSPrefersRareGrams(t *testing.T) {
	s := NewSpace(Mode{Char: false, N: 1},
		[]string{"common rare1", "common x", "common y"},
		[]string{"common rare1", "common z", "common w"},
	)
	rarePair := s.ARCS(0, 0)   // shares "common" and the rare "rare1"
	commonPair := s.ARCS(1, 1) // shares only "common"
	if rarePair <= commonPair {
		t.Fatalf("ARCS: rare-gram pair %v <= common-gram pair %v", rarePair, commonPair)
	}
}

func TestCandidatePairs(t *testing.T) {
	s := newTestSpace(Mode{Char: false, N: 1})
	pairs := s.CandidatePairs()
	want := map[[2]int32]bool{
		{0, 0}: true, // share "green", "apple"
		{1, 1}: true, // identical
	}
	got := map[[2]int32]bool{}
	for _, p := range pairs {
		got[p] = true
		if s.Sim(MeasureJaccard, int(p[0]), int(p[1])) == 0 {
			t.Fatalf("candidate pair %v has zero similarity", p)
		}
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing candidate pair %v; got %v", p, got)
		}
	}
	// Completeness: every positive-similarity pair is a candidate.
	for i := 0; i < s.N1(); i++ {
		for j := 0; j < s.N2(); j++ {
			if s.Sim(MeasureJaccard, i, j) > 0 && !got[[2]int32{int32(i), int32(j)}] {
				t.Fatalf("pair (%d,%d) has positive similarity but is not a candidate", i, j)
			}
		}
	}
}

// All measures stay in [0,1] and equal 1 on identical random texts.
func TestPropertyMeasureRange(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	gen := func(rng *rand.Rand) string {
		n := rng.Intn(6) + 1
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(parts, " ")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := make([]string, 4)
		t2 := make([]string, 4)
		for i := range t1 {
			t1[i] = gen(rng)
			t2[i] = gen(rng)
		}
		for _, mode := range Modes() {
			s := NewSpace(mode, t1, t2)
			for _, m := range Measures() {
				for i := range t1 {
					for j := range t2 {
						sim := s.Sim(m, i, j)
						if sim < 0 || sim > 1+1e-9 || math.IsNaN(sim) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// AllSims must agree with the individual Sim calls.
func TestAllSimsConsistent(t *testing.T) {
	for _, mode := range Modes() {
		s := newTestSpace(mode)
		for i := 0; i < s.N1(); i++ {
			for j := 0; j < s.N2(); j++ {
				all := s.AllSims(i, j)
				for k, m := range Measures() {
					want := s.Sim(m, i, j)
					if math.Abs(all[k]-want) > 1e-12 {
						t.Fatalf("%s AllSims[%s](%d,%d) = %v, want %v", mode, m, i, j, all[k], want)
					}
				}
			}
		}
	}
}

// The memoized TF-IDF vectors must equal a from-scratch materialization,
// and CandidatePairs must come back grouped by j with i ascending and
// free of duplicates.
func TestCacheAndCandidateOrder(t *testing.T) {
	s := newTestSpace(Mode{Char: true, N: 3})
	c1, c2 := s.CacheTFIDF()
	for i := range c1 {
		tf := s.TF(1, i)
		for k, id := range tf.IDs {
			want := tf.Ws[k] * s.idf[id]
			if c1[i].Ws[k] != want {
				t.Fatalf("tfidf1[%d][%d] = %v, want %v", i, k, c1[i].Ws[k], want)
			}
		}
	}
	if len(c2) != s.N2() {
		t.Fatalf("tfidf2 has %d entries, want %d", len(c2), s.N2())
	}
	pairs := s.CandidatePairs()
	seen := map[[2]int32]bool{}
	for k, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate candidate pair %v", p)
		}
		seen[p] = true
		if k > 0 {
			prev := pairs[k-1]
			if prev[1] > p[1] || (prev[1] == p[1] && prev[0] >= p[0]) {
				t.Fatalf("candidate pairs out of order: %v before %v", prev, p)
			}
		}
	}
}

// refSpace builds the document vectors the way the historical
// implementation did — string grams via Mode.Grams into a
// map[string]int32 vocabulary — as the reference for the allocation-free
// interner path.
func refSpaceDocs(mode Mode, texts []string, vocab map[string]int32) []Vec {
	docs := make([]Vec, len(texts))
	var ids []int32
	for i, text := range texts {
		grams := mode.Grams(text)
		ids = ids[:0]
		for _, g := range grams {
			id, ok := vocab[g]
			if !ok {
				id = int32(len(vocab))
				vocab[g] = id
			}
			ids = append(ids, id)
		}
		slices.Sort(ids)
		v := Vec{}
		norm := float64(len(grams))
		for k := 0; k < len(ids); {
			j := k + 1
			for j < len(ids) && ids[j] == ids[k] {
				j++
			}
			v.IDs = append(v.IDs, ids[k])
			v.Ws = append(v.Ws, float64(j-k)/norm)
			k = j
		}
		docs[i] = v
	}
	return docs
}

// TestInternerMatchesStringVocab pins the rune-window / token-tuple
// interner against the string-keyed vocabulary: identical gram ids,
// identical vectors, for every mode, over texts with empties, repeats,
// short-string grams and unicode.
func TestInternerMatchesStringVocab(t *testing.T) {
	texts1 := []string{
		"golden dragon bistro", "", "a", "ab", "a b", "日本語 カフェ",
		"!!!", "repeat repeat repeat", "Éclair café", "x",
	}
	texts2 := []string{
		"golden dragon", "harbor grill house", "", "ab", "b a",
		"日本語", "repeat", "zz zz zz zz",
	}
	for _, mode := range Modes() {
		s := NewSpace(mode, texts1, texts2)
		vocab := map[string]int32{}
		ref1 := refSpaceDocs(mode, texts1, vocab)
		ref2 := refSpaceDocs(mode, texts2, vocab)
		if s.vocabSize != len(vocab) {
			t.Fatalf("%v: vocabSize %d != reference %d", mode, s.vocabSize, len(vocab))
		}
		checkDocs := func(got, want []Vec, side int) {
			t.Helper()
			for i := range want {
				if !slices.Equal(got[i].IDs, want[i].IDs) {
					t.Fatalf("%v side %d entity %d: ids %v != %v", mode, side, i, got[i].IDs, want[i].IDs)
				}
				if !slices.Equal(got[i].Ws, want[i].Ws) {
					t.Fatalf("%v side %d entity %d: ws %v != %v", mode, side, i, got[i].Ws, want[i].Ws)
				}
			}
		}
		checkDocs(s.docs1, ref1, 1)
		checkDocs(s.docs2, ref2, 2)

		// Pre-tokenized construction must be identical too.
		toks := func(texts []string) [][]string {
			out := make([][]string, len(texts))
			for i, txt := range texts {
				out[i] = strsim.Tokenize(txt)
			}
			return out
		}
		st := NewSpaceTokens(mode, texts1, texts2, toks(texts1), toks(texts2))
		checkDocs(st.docs1, ref1, 1)
		checkDocs(st.docs2, ref2, 2)
	}
}

// TestUnionCandidatesSortedClear pins the bitset-walk enumeration:
// ascending distinct output, bitset cleared afterwards.
func TestUnionCandidatesSortedClear(t *testing.T) {
	lists := [][]int32{{0, 2}, {1}, {0, 1, 3}, {}, {2, 3}}
	off, post := BuildPostings(lists, 4)
	bits := make([]uint64, 1)
	for _, query := range [][]int32{{0}, {1, 2}, {3, 3, 0}, {}} {
		got := UnionCandidates(query, off, post, bits, nil)
		want := map[int32]bool{}
		for _, id := range query {
			for i, l := range lists {
				for _, x := range l {
					if x == id {
						want[int32(i)] = true
					}
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %v: got %v", query, got)
		}
		for k := 1; k < len(got); k++ {
			if got[k-1] >= got[k] {
				t.Fatalf("query %v: not ascending: %v", query, got)
			}
		}
		for _, i := range got {
			if !want[int32(i)] {
				t.Fatalf("query %v: spurious %d", query, i)
			}
		}
		if bits[0] != 0 {
			t.Fatal("bitset not cleared")
		}
	}
}
