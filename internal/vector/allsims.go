package vector

import "math"

// CacheTFIDF precomputes the TF-IDF vectors of both collections, so that
// corpus generation does not rebuild them per pair.
func (s *Space) CacheTFIDF() (c1, c2 []Vec) {
	c1 = make([]Vec, len(s.docs1))
	for i := range s.docs1 {
		c1[i] = s.TFIDF(1, i)
	}
	c2 = make([]Vec, len(s.docs2))
	for j := range s.docs2 {
		c2[j] = s.TFIDF(2, j)
	}
	return c1, c2
}

// AllSims computes all six bag measures for the pair (i, j) in a single
// merge-join over the two sparse vectors, returning them in Measures()
// order: ARCS, CosineTF, CosineTFIDF, Jaccard, GeneralizedJaccardTF,
// GeneralizedJaccardTFIDF. tfidf1 and tfidf2 are the caches from
// CacheTFIDF.
func (s *Space) AllSims(i, j int, tfidf1, tfidf2 []Vec) [6]float64 {
	a, b := s.docs1[i], s.docs2[j]
	wa, wb := tfidf1[i], tfidf2[j] // same IDs as a and b, different weights

	var (
		arcs           float64
		dotTF, dotIDF  float64
		inter          int
		minTF, maxTF   float64
		minIDF, maxIDF float64
	)
	ii, jj := 0, 0
	for ii < len(a.IDs) || jj < len(b.IDs) {
		switch {
		case jj >= len(b.IDs) || (ii < len(a.IDs) && a.IDs[ii] < b.IDs[jj]):
			maxTF += a.Ws[ii]
			maxIDF += wa.Ws[ii]
			ii++
		case ii >= len(a.IDs) || a.IDs[ii] > b.IDs[jj]:
			maxTF += b.Ws[jj]
			maxIDF += wb.Ws[jj]
			jj++
		default:
			id := a.IDs[ii]
			inter++
			dotTF += a.Ws[ii] * b.Ws[jj]
			dotIDF += wa.Ws[ii] * wb.Ws[jj]
			minTF += math.Min(a.Ws[ii], b.Ws[jj])
			maxTF += math.Max(a.Ws[ii], b.Ws[jj])
			minIDF += math.Min(wa.Ws[ii], wb.Ws[jj])
			maxIDF += math.Max(wa.Ws[ii], wb.Ws[jj])
			df1 := math.Max(2, float64(s.df1[id]))
			df2 := math.Max(2, float64(s.df2[id]))
			arcs += math.Ln2 / math.Log(df1*df2)
			ii++
			jj++
		}
	}

	var out [6]float64
	if a.Len() > 0 && b.Len() > 0 {
		arcs /= float64(min2(a.Len(), b.Len()))
		if arcs > 1 {
			arcs = 1
		}
		out[0] = arcs
	}
	if na, nb := a.Norm(), b.Norm(); na > 0 && nb > 0 {
		out[1] = dotTF / (na * nb)
	}
	if na, nb := wa.Norm(), wb.Norm(); na > 0 && nb > 0 {
		out[2] = dotIDF / (na * nb)
	}
	if union := a.Len() + b.Len() - inter; union > 0 {
		out[3] = float64(inter) / float64(union)
	} else {
		out[3] = 1
	}
	if maxTF > 0 {
		out[4] = minTF / maxTF
	} else {
		out[4] = 1
	}
	if maxIDF > 0 {
		out[5] = minIDF / maxIDF
	} else {
		out[5] = 1
	}
	return out
}
