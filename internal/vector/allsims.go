package vector

// CacheTFIDF returns the memoized TF-IDF vectors of both collections,
// building them on first use. Kept for callers that want the raw
// vectors; AllSims reads the cache internally. The returned slices
// alias the Space's cache and must not be modified — mutating them
// would corrupt every subsequent Sim/AllSims/TFIDF on this Space.
func (s *Space) CacheTFIDF() (c1, c2 []Vec) {
	s.ensureCache()
	return s.tfidf1, s.tfidf2
}

// AllSims computes all six bag measures for the pair (i, j) in a single
// merge-join over the two sparse vectors, returning them in Measures()
// order: ARCS, CosineTF, CosineTFIDF, Jaccard, GeneralizedJaccardTF,
// GeneralizedJaccardTFIDF. The TF-IDF vectors and all four norms come
// from the per-entity cache, so the pair cost is exactly one merge join.
func (s *Space) AllSims(i, j int) [6]float64 {
	s.ensureCache()
	a, b := s.docs1[i], s.docs2[j]
	wa, wb := s.tfidf1[i], s.tfidf2[j] // same IDs as a and b, different weights

	var (
		arcs           float64
		dotTF, dotIDF  float64
		inter          int
		minTF, maxTF   float64
		minIDF, maxIDF float64
	)
	ii, jj := 0, 0
	for ii < len(a.IDs) || jj < len(b.IDs) {
		switch {
		case jj >= len(b.IDs) || (ii < len(a.IDs) && a.IDs[ii] < b.IDs[jj]):
			maxTF += a.Ws[ii]
			maxIDF += wa.Ws[ii]
			ii++
		case ii >= len(a.IDs) || a.IDs[ii] > b.IDs[jj]:
			maxTF += b.Ws[jj]
			maxIDF += wb.Ws[jj]
			jj++
		default:
			// Branchy min/max instead of math.Min/Max: the weights are
			// finite, and even in the ±0 corner the chosen operand sums
			// to the identical accumulator value, so the measures stay
			// bit-identical while skipping the calls.
			inter++
			x, y := a.Ws[ii], b.Ws[jj]
			dotTF += x * y
			if x < y {
				minTF += x
				maxTF += y
			} else {
				minTF += y
				maxTF += x
			}
			x, y = wa.Ws[ii], wb.Ws[jj]
			dotIDF += x * y
			if x < y {
				minIDF += x
				maxIDF += y
			} else {
				minIDF += y
				maxIDF += x
			}
			arcs += s.arcsW[a.IDs[ii]]
			ii++
			jj++
		}
	}

	var out [6]float64
	if a.Len() > 0 && b.Len() > 0 {
		arcs /= float64(min2(a.Len(), b.Len()))
		if arcs > 1 {
			arcs = 1
		}
		out[0] = arcs
	}
	if na, nb := s.tfNorm1[i], s.tfNorm2[j]; na > 0 && nb > 0 {
		out[1] = dotTF / (na * nb)
	}
	if na, nb := s.wNorm1[i], s.wNorm2[j]; na > 0 && nb > 0 {
		out[2] = dotIDF / (na * nb)
	}
	if union := a.Len() + b.Len() - inter; union > 0 {
		out[3] = float64(inter) / float64(union)
	} else {
		out[3] = 1
	}
	if maxTF > 0 {
		out[4] = minTF / maxTF
	} else {
		out[4] = 1
	}
	if maxIDF > 0 {
		out[5] = minIDF / maxIDF
	} else {
		out[5] = 1
	}
	return out
}
