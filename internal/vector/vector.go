// Package vector implements the paper's schema-agnostic bag (vector
// space) models: character n-gram (n=2,3,4) and token n-gram (n=1,2,3)
// sparse vectors with TF or TF-IDF weights, compared with ARCS, cosine,
// Jaccard and generalized Jaccard similarities (Appendix B.2.1).
//
// A Space holds the two entity collections of a Clean-Clean ER task in a
// shared vocabulary, keeps per-collection document frequencies (needed by
// ARCS) and a joint IDF (used by the TF-IDF weighted measures), and can
// enumerate all candidate pairs through an inverted index, which is how
// the paper's pipeline produces similarity graphs containing every pair
// with similarity above zero.
package vector

import (
	"fmt"
	"math"
	bits2 "math/bits"
	"slices"
	"sync"

	"github.com/ccer-go/ccer/internal/strsim"
)

// Mode selects a representation model: character or token n-grams of a
// given order.
type Mode struct {
	Char bool
	N    int
}

// String returns e.g. "char3" or "token2".
func (m Mode) String() string {
	kind := "token"
	if m.Char {
		kind = "char"
	}
	return fmt.Sprintf("%s%d", kind, m.N)
}

// Modes returns the paper's six bag representation models: character
// n-grams for n=2,3,4 and token n-grams for n=1,2,3.
func Modes() []Mode {
	return []Mode{
		{Char: true, N: 2}, {Char: true, N: 3}, {Char: true, N: 4},
		{Char: false, N: 1}, {Char: false, N: 2}, {Char: false, N: 3},
	}
}

// Grams extracts the n-grams of text under the mode. Character n-grams
// slide over the raw runes; token n-grams join consecutive lower-cased
// word tokens with a space.
func (m Mode) Grams(text string) []string {
	if m.Char {
		return CharNGrams(text, m.N)
	}
	return TokenNGrams(strsim.Tokenize(text), m.N)
}

// CharNGrams returns the character n-grams of s. Strings shorter than n
// yield the string itself as a single gram, so short values still get a
// representation.
func CharNGrams(s string, n int) []string {
	r := []rune(s)
	if len(r) == 0 {
		return nil
	}
	if len(r) <= n {
		return []string{string(r)}
	}
	grams := make([]string, 0, len(r)-n+1)
	for i := 0; i+n <= len(r); i++ {
		grams = append(grams, string(r[i:i+n]))
	}
	return grams
}

// TokenNGrams returns the token n-grams of the token sequence.
func TokenNGrams(tokens []string, n int) []string {
	if len(tokens) == 0 {
		return nil
	}
	if len(tokens) <= n {
		return []string{join(tokens)}
	}
	grams := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		grams = append(grams, join(tokens[i:i+n]))
	}
	return grams
}

func join(tokens []string) string {
	out := tokens[0]
	for _, t := range tokens[1:] {
		out += " " + t
	}
	return out
}

// Vec is a sparse vector over gram ids, sorted by id.
type Vec struct {
	IDs []int32
	Ws  []float64
}

// Len returns the number of non-zero dimensions.
func (v Vec) Len() int { return len(v.IDs) }

// Norm returns the L2 norm.
func (v Vec) Norm() float64 {
	s := 0.0
	for _, w := range v.Ws {
		s += w * w
	}
	return math.Sqrt(s)
}

// Dot returns the dot product of two sparse vectors via merge join.
func Dot(a, b Vec) float64 {
	i, j, s := 0, 0, 0.0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			s += a.Ws[i] * b.Ws[j]
			i++
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity of two sparse vectors.
func Cosine(a, b Vec) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// JaccardSet returns set Jaccard over the non-zero dimensions.
func JaccardSet(a, b Vec) float64 {
	if len(a.IDs) == 0 && len(b.IDs) == 0 {
		return 1
	}
	i, j, inter := 0, 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a.IDs) + len(b.IDs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// GeneralizedJaccard returns Σmin(w)/Σmax(w) over the weighted
// dimensions.
func GeneralizedJaccard(a, b Vec) float64 {
	i, j := 0, 0
	minSum, maxSum := 0.0, 0.0
	for i < len(a.IDs) || j < len(b.IDs) {
		switch {
		case j >= len(b.IDs) || (i < len(a.IDs) && a.IDs[i] < b.IDs[j]):
			maxSum += a.Ws[i]
			i++
		case i >= len(a.IDs) || a.IDs[i] > b.IDs[j]:
			maxSum += b.Ws[j]
			j++
		default:
			minSum += math.Min(a.Ws[i], b.Ws[j])
			maxSum += math.Max(a.Ws[i], b.Ws[j])
			i++
			j++
		}
	}
	if maxSum == 0 {
		return 1
	}
	return minSum / maxSum
}

// gramInterner assigns dense gram ids in first-occurrence order without
// materializing gram strings: char n-grams (n <= 4) key the rune window
// directly (padded with an impossible rune for the short-string gram),
// token n-grams (n <= 3) key tuples of interned token ids. Both key
// equivalences coincide with string equality of the corresponding gram
// strings, so the assigned ids — and every downstream float summation
// order — are identical to the historical map[string]int32 vocabulary.
// Modes outside those bounds (not produced by Modes()) fall back to
// string keys via Mode.Grams.
type gramInterner struct {
	char  map[[4]rune]int32
	tokID map[string]int32
	tok   map[[3]int32]int32
	str   map[string]int32
	size  int
}

// noRune pads short gram keys; it can never appear in decoded text.
const noRune rune = -1

// emptyTokens distinguishes "pre-tokenized with zero tokens" from "not
// pre-tokenized" (nil) in NewSpaceTokens.
var emptyTokens = make([]string, 0)

func newGramInterner(mode Mode) *gramInterner {
	in := &gramInterner{}
	switch {
	case mode.Char && mode.N <= 4:
		in.char = make(map[[4]rune]int32)
	case !mode.Char && mode.N <= 3:
		in.tokID = make(map[string]int32)
		in.tok = make(map[[3]int32]int32)
	default:
		in.str = make(map[string]int32)
	}
	return in
}

func (in *gramInterner) internChar(key [4]rune) int32 {
	id, ok := in.char[key]
	if !ok {
		id = int32(in.size)
		in.char[key] = id
		in.size++
	}
	return id
}

func (in *gramInterner) internTok(key [3]int32) int32 {
	id, ok := in.tok[key]
	if !ok {
		id = int32(in.size)
		in.tok[key] = id
		in.size++
	}
	return id
}

func (in *gramInterner) tokenID(tok string) int32 {
	id, ok := in.tokID[tok]
	if !ok {
		id = int32(len(in.tokID))
		in.tokID[tok] = id
	}
	return id
}

func (in *gramInterner) internStr(gram string) int32 {
	id, ok := in.str[gram]
	if !ok {
		id = int32(in.size)
		in.str[gram] = id
		in.size++
	}
	return id
}

// gramIDs appends the text's gram ids under the mode to dst, interning
// new grams. toks, when non-nil, are strsim.Tokenize(text) (token modes
// only); runeBuf is reusable rune scratch. It returns the ids, the
// rune scratch and the token-id scratch for reuse.
func (in *gramInterner) gramIDs(mode Mode, text string, toks []string, dst []int32, runeBuf []rune, tidBuf []int32) ([]int32, []rune, []int32) {
	switch {
	case in.char != nil:
		runeBuf = append(runeBuf[:0], []rune(text)...)
		r := runeBuf
		if len(r) == 0 {
			return dst, runeBuf, tidBuf
		}
		key := [4]rune{noRune, noRune, noRune, noRune}
		if len(r) <= mode.N {
			copy(key[:], r)
			return append(dst, in.internChar(key)), runeBuf, tidBuf
		}
		for i := 0; i+mode.N <= len(r); i++ {
			copy(key[:], r[i:i+mode.N])
			dst = append(dst, in.internChar(key))
		}
		return dst, runeBuf, tidBuf
	case in.tok != nil:
		if toks == nil {
			toks = strsim.Tokenize(text)
		}
		if len(toks) == 0 {
			return dst, runeBuf, tidBuf
		}
		tidBuf = tidBuf[:0]
		for _, tok := range toks {
			tidBuf = append(tidBuf, in.tokenID(tok))
		}
		key := [3]int32{-1, -1, -1}
		if len(tidBuf) <= mode.N {
			copy(key[:], tidBuf)
			return append(dst, in.internTok(key)), runeBuf, tidBuf
		}
		for i := 0; i+mode.N <= len(tidBuf); i++ {
			copy(key[:], tidBuf[i:i+mode.N])
			dst = append(dst, in.internTok(key))
		}
		return dst, runeBuf, tidBuf
	default:
		for _, g := range mode.Grams(text) {
			dst = append(dst, in.internStr(g))
		}
		return dst, runeBuf, tidBuf
	}
}

// Space is the shared vector space of two entity collections under one
// representation model.
type Space struct {
	Mode      Mode
	vocabSize int
	// TF document vectors per collection, indexed by entity.
	docs1, docs2 []Vec
	// Per-collection document frequencies per gram id (for ARCS) and
	// joint IDF over both collections (for TF-IDF weighting).
	df1, df2 []int32
	idf      []float64

	// Memoized per-entity derived representations, built at most once
	// (Sim historically recomputed the TF-IDF vectors on every pair).
	cacheOnce        sync.Once
	tfidf1, tfidf2   []Vec
	tfNorm1, tfNorm2 []float64 // L2 norms of the TF vectors
	wNorm1, wNorm2   []float64 // L2 norms of the TF-IDF vectors
	arcsW            []float64 // per-gram ARCS contribution ln2/log(df1·df2)

	// Memoized inverted index over collection 1 (CSR postings), used by
	// candidate enumeration.
	postOnce sync.Once
	postOff  []int32
	postIDs  []int32
}

// NewSpace builds the space from the schema-agnostic texts of the two
// collections (one string per entity).
func NewSpace(mode Mode, texts1, texts2 []string) *Space {
	return newSpace(mode, texts1, texts2, nil, nil)
}

// NewSpaceTokens is NewSpace with pre-tokenized texts for token modes:
// toks1/toks2 must be strsim.Tokenize of each entity's text, letting the
// paper's three token models share one tokenization pass. Char modes
// ignore the token lists. The space is identical to NewSpace's.
func NewSpaceTokens(mode Mode, texts1, texts2 []string, toks1, toks2 [][]string) *Space {
	return newSpace(mode, texts1, texts2, toks1, toks2)
}

func newSpace(mode Mode, texts1, texts2 []string, toks1, toks2 [][]string) *Space {
	s := &Space{Mode: mode}
	in := newGramInterner(mode)
	s.docs1 = s.addAll(in, texts1, toks1, &s.df1)
	s.docs2 = s.addAll(in, texts2, toks2, &s.df2)
	s.vocabSize = in.size
	// Pad DFs to the final vocabulary size.
	for len(s.df1) < s.vocabSize {
		s.df1 = append(s.df1, 0)
	}
	for len(s.df2) < s.vocabSize {
		s.df2 = append(s.df2, 0)
	}
	total := len(texts1) + len(texts2)
	s.idf = make([]float64, s.vocabSize)
	for id := range s.idf {
		df := int(s.df1[id] + s.df2[id])
		s.idf[id] = math.Log(float64(total) / float64(df+1))
		if s.idf[id] < 0 {
			s.idf[id] = 0
		}
	}
	return s
}

func (s *Space) addAll(in *gramInterner, texts []string, toks [][]string, df *[]int32) []Vec {
	docs := make([]Vec, len(texts))
	var ids []int32 // reusable per-entity gram-id scratch
	var runeBuf []rune
	var tidBuf []int32
	for i, text := range texts {
		var entToks []string
		if toks != nil {
			entToks = toks[i]
			if entToks == nil {
				entToks = emptyTokens // pre-tokenized as token-less: do not re-tokenize
			}
		}
		ids, runeBuf, tidBuf = in.gramIDs(s.Mode, text, entToks, ids[:0], runeBuf, tidBuf)
		// Sort + run-length encode instead of a per-entity count map.
		norm := float64(len(ids))
		slices.Sort(ids)
		v := Vec{}
		for k := 0; k < len(ids); {
			j := k + 1
			for j < len(ids) && ids[j] == ids[k] {
				j++
			}
			id := ids[k]
			v.IDs = append(v.IDs, id)
			v.Ws = append(v.Ws, float64(j-k)/norm) // normalized TF
			for int(id) >= len(*df) {
				*df = append(*df, 0)
			}
			(*df)[id]++
			k = j
		}
		docs[i] = v
	}
	return docs
}

// N1 returns the number of entities in the first collection.
func (s *Space) N1() int { return len(s.docs1) }

// N2 returns the number of entities in the second collection.
func (s *Space) N2() int { return len(s.docs2) }

// TF returns the TF vector of entity i from the given collection (1 or 2).
func (s *Space) TF(collection, i int) Vec {
	if collection == 1 {
		return s.docs1[i]
	}
	return s.docs2[i]
}

// TFIDF returns the TF-IDF weighted vector of entity i, served from the
// per-entity cache (built on first use).
func (s *Space) TFIDF(collection, i int) Vec {
	s.ensureCache()
	if collection == 1 {
		return s.tfidf1[i]
	}
	return s.tfidf2[i]
}

// tfidfOf materializes one TF-IDF vector; ensureCache calls it per
// entity exactly once.
func (s *Space) tfidfOf(tf Vec) Vec {
	v := Vec{IDs: tf.IDs, Ws: make([]float64, len(tf.Ws))}
	for k, id := range tf.IDs {
		v.Ws[k] = tf.Ws[k] * s.idf[id]
	}
	return v
}

// ensureCache builds the memoized TF-IDF vectors and the TF/TF-IDF norms
// of every entity. It runs at most once per Space (sync.Once), so both
// the corpus fast path and ad-hoc Sim callers share one materialization.
func (s *Space) ensureCache() {
	s.cacheOnce.Do(func() {
		s.tfidf1 = make([]Vec, len(s.docs1))
		s.tfNorm1 = make([]float64, len(s.docs1))
		s.wNorm1 = make([]float64, len(s.docs1))
		for i, d := range s.docs1 {
			s.tfidf1[i] = s.tfidfOf(d)
			s.tfNorm1[i] = d.Norm()
			s.wNorm1[i] = s.tfidf1[i].Norm()
		}
		s.tfidf2 = make([]Vec, len(s.docs2))
		s.tfNorm2 = make([]float64, len(s.docs2))
		s.wNorm2 = make([]float64, len(s.docs2))
		for j, d := range s.docs2 {
			s.tfidf2[j] = s.tfidfOf(d)
			s.tfNorm2[j] = d.Norm()
			s.wNorm2[j] = s.tfidf2[j].Norm()
		}
		// The ARCS contribution of a shared gram depends only on its two
		// document frequencies; tabulating it once replaces a math.Log
		// per shared gram per pair with a load of the identical float.
		s.arcsW = make([]float64, s.vocabSize)
		for id := range s.arcsW {
			df1 := math.Max(2, float64(s.df1[id]))
			df2 := math.Max(2, float64(s.df2[id]))
			s.arcsW[id] = math.Ln2 / math.Log(df1*df2)
		}
	})
}

// ARCS sums log2 / log(DF1(k)·DF2(k)) over the grams shared by entity i
// of collection 1 and entity j of collection 2: the rarer the shared
// grams, the higher the similarity. Grams that appear only once in a
// collection would zero the log, so frequencies are floored at 2, and the
// result is capped at 1 after scaling by the smaller vector size, keeping
// scores in [0,1] before the pipeline's min-max normalization.
func (s *Space) ARCS(i, j int) float64 {
	a, b := s.docs1[i], s.docs2[j]
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	s.ensureCache()
	ii, jj, sum := 0, 0, 0.0
	for ii < len(a.IDs) && jj < len(b.IDs) {
		switch {
		case a.IDs[ii] < b.IDs[jj]:
			ii++
		case a.IDs[ii] > b.IDs[jj]:
			jj++
		default:
			sum += s.arcsW[a.IDs[ii]]
			ii++
			jj++
		}
	}
	sim := sum / float64(min2(a.Len(), b.Len()))
	if sim > 1 {
		sim = 1
	}
	return sim
}

// Measure names for bag models, as used in the paper (Appendix B,
// category 2): six measures combining ARCS, cosine and Jaccard variants
// with TF or TF-IDF weights.
const (
	MeasureARCS        = "ARCS"
	MeasureCosineTF    = "CosineTF"
	MeasureCosineTFIDF = "CosineTFIDF"
	MeasureJaccard     = "Jaccard"
	MeasureGenJacTF    = "GeneralizedJaccardTF"
	MeasureGenJacTFIDF = "GeneralizedJaccardTFIDF"
)

// Measures returns the six bag-model measure names in a stable order.
func Measures() []string {
	return []string{
		MeasureARCS, MeasureCosineTF, MeasureCosineTFIDF,
		MeasureJaccard, MeasureGenJacTF, MeasureGenJacTFIDF,
	}
}

// Sim computes the named measure between entity i of collection 1 and
// entity j of collection 2, using the memoized per-entity TF-IDF vectors
// and norms (values are bit-identical to recomputing them per pair). It
// panics on an unknown measure name, which indicates a programming error
// in the caller's configuration.
func (s *Space) Sim(measure string, i, j int) float64 {
	s.ensureCache()
	switch measure {
	case MeasureARCS:
		return s.ARCS(i, j)
	case MeasureCosineTF:
		return cosineNormed(s.docs1[i], s.docs2[j], s.tfNorm1[i], s.tfNorm2[j])
	case MeasureCosineTFIDF:
		return cosineNormed(s.tfidf1[i], s.tfidf2[j], s.wNorm1[i], s.wNorm2[j])
	case MeasureJaccard:
		return JaccardSet(s.docs1[i], s.docs2[j])
	case MeasureGenJacTF:
		return GeneralizedJaccard(s.docs1[i], s.docs2[j])
	case MeasureGenJacTFIDF:
		return GeneralizedJaccard(s.tfidf1[i], s.tfidf2[j])
	default:
		panic("vector: unknown measure " + measure)
	}
}

// cosineNormed is Cosine with the norms precomputed.
func cosineNormed(a, b Vec, na, nb float64) float64 {
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// BuildPostings builds a CSR inverted index over per-item id lists:
// ids[off[g]:off[g+1]] lists, in ascending item order, the items whose
// list contains id g. size is the id-space size; every id must be in
// [0, size).
func BuildPostings(lists [][]int32, size int) (off, ids []int32) {
	off = make([]int32, size+1)
	for _, l := range lists {
		for _, id := range l {
			off[id+1]++
		}
	}
	for g := 0; g < size; g++ {
		off[g+1] += off[g]
	}
	ids = make([]int32, off[size])
	next := append([]int32(nil), off[:size]...)
	for i, l := range lists {
		for _, id := range l {
			ids[next[id]] = int32(i)
			next[id]++
		}
	}
	return off, ids
}

// UnionCandidates appends to dst the distinct items posted under any of
// the query ids, in ascending order. bits must be a zeroed bitset with
// at least one bit per item; it is cleared again before returning, so
// one allocation serves a whole enumeration loop. The ascending order
// comes from walking the touched bitset words lowest-first, so no sort
// is needed.
func UnionCandidates(query, off, post []int32, bits []uint64, dst []int32) []int32 {
	dst = dst[:0]
	loW, hiW := len(bits), -1
	for _, id := range query {
		for _, i := range post[off[id]:off[id+1]] {
			w := int(i >> 6)
			if bits[w]&(1<<(uint(i)&63)) == 0 {
				bits[w] |= 1 << (uint(i) & 63)
				if w < loW {
					loW = w
				}
				if w > hiW {
					hiW = w
				}
			}
		}
	}
	for w := loW; w <= hiW; w++ {
		for word := bits[w]; word != 0; word &= word - 1 {
			dst = append(dst, int32(w<<6+bits2.TrailingZeros64(word)))
		}
		bits[w] = 0
	}
	return dst
}

// postings builds (once) the CSR inverted index over collection 1:
// postIDs[postOff[g]:postOff[g+1]] lists, in ascending order, the
// entities whose vectors contain gram g.
func (s *Space) postings() {
	s.postOnce.Do(func() {
		lists := make([][]int32, len(s.docs1))
		for i, v := range s.docs1 {
			lists[i] = v.IDs
		}
		s.postOff, s.postIDs = BuildPostings(lists, s.vocabSize)
	})
}

// Candidates appends to dst the collection-1 entities sharing at least
// one gram with entity j of collection 2, in ascending order. bits must
// be a zeroed bitset with at least N1 bits; it is cleared again before
// returning, so one allocation serves a whole enumeration loop. Passing
// nil bits (and nil dst) is valid but allocates per call.
func (s *Space) Candidates(j int, bits []uint64, dst []int32) []int32 {
	s.postings()
	if bits == nil {
		bits = make([]uint64, (len(s.docs1)+63)/64)
	}
	return UnionCandidates(s.docs2[j].IDs, s.postOff, s.postIDs, bits, dst)
}

// CandidatePairs returns all (i, j) pairs that share at least one gram,
// via the inverted index over collection 1. Pairs that share nothing
// have similarity zero under every bag measure, so this enumerates
// exactly the graph's potential edges. Pairs come back grouped by j with
// i ascending; deduplication uses a reusable bitset instead of a
// per-call hash set. It is the one-shot convenience over Candidates,
// which per-row kernels (internal/simgraph) call directly to reuse the
// bitset and emit rows in place.
func (s *Space) CandidatePairs() [][2]int32 {
	bits := make([]uint64, (len(s.docs1)+63)/64)
	var buf []int32
	var pairs [][2]int32
	for j := range s.docs2 {
		buf = s.Candidates(j, bits, buf)
		for _, i := range buf {
			pairs = append(pairs, [2]int32{i, int32(j)})
		}
	}
	return pairs
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
