// Package vector implements the paper's schema-agnostic bag (vector
// space) models: character n-gram (n=2,3,4) and token n-gram (n=1,2,3)
// sparse vectors with TF or TF-IDF weights, compared with ARCS, cosine,
// Jaccard and generalized Jaccard similarities (Appendix B.2.1).
//
// A Space holds the two entity collections of a Clean-Clean ER task in a
// shared vocabulary, keeps per-collection document frequencies (needed by
// ARCS) and a joint IDF (used by the TF-IDF weighted measures), and can
// enumerate all candidate pairs through an inverted index, which is how
// the paper's pipeline produces similarity graphs containing every pair
// with similarity above zero.
package vector

import (
	"fmt"
	"math"
	"sort"

	"github.com/ccer-go/ccer/internal/strsim"
)

// Mode selects a representation model: character or token n-grams of a
// given order.
type Mode struct {
	Char bool
	N    int
}

// String returns e.g. "char3" or "token2".
func (m Mode) String() string {
	kind := "token"
	if m.Char {
		kind = "char"
	}
	return fmt.Sprintf("%s%d", kind, m.N)
}

// Modes returns the paper's six bag representation models: character
// n-grams for n=2,3,4 and token n-grams for n=1,2,3.
func Modes() []Mode {
	return []Mode{
		{Char: true, N: 2}, {Char: true, N: 3}, {Char: true, N: 4},
		{Char: false, N: 1}, {Char: false, N: 2}, {Char: false, N: 3},
	}
}

// Grams extracts the n-grams of text under the mode. Character n-grams
// slide over the raw runes; token n-grams join consecutive lower-cased
// word tokens with a space.
func (m Mode) Grams(text string) []string {
	if m.Char {
		return CharNGrams(text, m.N)
	}
	return TokenNGrams(strsim.Tokenize(text), m.N)
}

// CharNGrams returns the character n-grams of s. Strings shorter than n
// yield the string itself as a single gram, so short values still get a
// representation.
func CharNGrams(s string, n int) []string {
	r := []rune(s)
	if len(r) == 0 {
		return nil
	}
	if len(r) <= n {
		return []string{string(r)}
	}
	grams := make([]string, 0, len(r)-n+1)
	for i := 0; i+n <= len(r); i++ {
		grams = append(grams, string(r[i:i+n]))
	}
	return grams
}

// TokenNGrams returns the token n-grams of the token sequence.
func TokenNGrams(tokens []string, n int) []string {
	if len(tokens) == 0 {
		return nil
	}
	if len(tokens) <= n {
		return []string{join(tokens)}
	}
	grams := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		grams = append(grams, join(tokens[i:i+n]))
	}
	return grams
}

func join(tokens []string) string {
	out := tokens[0]
	for _, t := range tokens[1:] {
		out += " " + t
	}
	return out
}

// Vec is a sparse vector over gram ids, sorted by id.
type Vec struct {
	IDs []int32
	Ws  []float64
}

// Len returns the number of non-zero dimensions.
func (v Vec) Len() int { return len(v.IDs) }

// Norm returns the L2 norm.
func (v Vec) Norm() float64 {
	s := 0.0
	for _, w := range v.Ws {
		s += w * w
	}
	return math.Sqrt(s)
}

// Dot returns the dot product of two sparse vectors via merge join.
func Dot(a, b Vec) float64 {
	i, j, s := 0, 0, 0.0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			s += a.Ws[i] * b.Ws[j]
			i++
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity of two sparse vectors.
func Cosine(a, b Vec) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// JaccardSet returns set Jaccard over the non-zero dimensions.
func JaccardSet(a, b Vec) float64 {
	if len(a.IDs) == 0 && len(b.IDs) == 0 {
		return 1
	}
	i, j, inter := 0, 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a.IDs) + len(b.IDs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// GeneralizedJaccard returns Σmin(w)/Σmax(w) over the weighted
// dimensions.
func GeneralizedJaccard(a, b Vec) float64 {
	i, j := 0, 0
	minSum, maxSum := 0.0, 0.0
	for i < len(a.IDs) || j < len(b.IDs) {
		switch {
		case j >= len(b.IDs) || (i < len(a.IDs) && a.IDs[i] < b.IDs[j]):
			maxSum += a.Ws[i]
			i++
		case i >= len(a.IDs) || a.IDs[i] > b.IDs[j]:
			maxSum += b.Ws[j]
			j++
		default:
			minSum += math.Min(a.Ws[i], b.Ws[j])
			maxSum += math.Max(a.Ws[i], b.Ws[j])
			i++
			j++
		}
	}
	if maxSum == 0 {
		return 1
	}
	return minSum / maxSum
}

// Space is the shared vector space of two entity collections under one
// representation model.
type Space struct {
	Mode  Mode
	vocab map[string]int32
	// TF document vectors per collection, indexed by entity.
	docs1, docs2 []Vec
	// Per-collection document frequencies per gram id (for ARCS) and
	// joint IDF over both collections (for TF-IDF weighting).
	df1, df2 []int32
	idf      []float64
}

// NewSpace builds the space from the schema-agnostic texts of the two
// collections (one string per entity).
func NewSpace(mode Mode, texts1, texts2 []string) *Space {
	s := &Space{Mode: mode, vocab: make(map[string]int32)}
	s.docs1 = s.addAll(texts1, &s.df1)
	s.docs2 = s.addAll(texts2, &s.df2)
	// Pad DFs to the final vocabulary size.
	for len(s.df1) < len(s.vocab) {
		s.df1 = append(s.df1, 0)
	}
	for len(s.df2) < len(s.vocab) {
		s.df2 = append(s.df2, 0)
	}
	total := len(texts1) + len(texts2)
	s.idf = make([]float64, len(s.vocab))
	for id := range s.idf {
		df := int(s.df1[id] + s.df2[id])
		s.idf[id] = math.Log(float64(total) / float64(df+1))
		if s.idf[id] < 0 {
			s.idf[id] = 0
		}
	}
	return s
}

func (s *Space) addAll(texts []string, df *[]int32) []Vec {
	docs := make([]Vec, len(texts))
	for i, text := range texts {
		grams := s.Mode.Grams(text)
		counts := make(map[int32]float64, len(grams))
		for _, g := range grams {
			id, ok := s.vocab[g]
			if !ok {
				id = int32(len(s.vocab))
				s.vocab[g] = id
			}
			counts[id]++
		}
		v := Vec{IDs: make([]int32, 0, len(counts)), Ws: make([]float64, 0, len(counts))}
		for id := range counts {
			v.IDs = append(v.IDs, id)
		}
		sort.Slice(v.IDs, func(a, b int) bool { return v.IDs[a] < v.IDs[b] })
		norm := float64(len(grams))
		for _, id := range v.IDs {
			v.Ws = append(v.Ws, counts[id]/norm) // normalized TF
			for int(id) >= len(*df) {
				*df = append(*df, 0)
			}
			(*df)[id]++
		}
		docs[i] = v
	}
	return docs
}

// N1 returns the number of entities in the first collection.
func (s *Space) N1() int { return len(s.docs1) }

// N2 returns the number of entities in the second collection.
func (s *Space) N2() int { return len(s.docs2) }

// TF returns the TF vector of entity i from the given collection (1 or 2).
func (s *Space) TF(collection, i int) Vec {
	if collection == 1 {
		return s.docs1[i]
	}
	return s.docs2[i]
}

// TFIDF returns the TF-IDF weighted vector of entity i.
func (s *Space) TFIDF(collection, i int) Vec {
	tf := s.TF(collection, i)
	v := Vec{IDs: tf.IDs, Ws: make([]float64, len(tf.Ws))}
	for k, id := range tf.IDs {
		v.Ws[k] = tf.Ws[k] * s.idf[id]
	}
	return v
}

// ARCS sums log2 / log(DF1(k)·DF2(k)) over the grams shared by entity i
// of collection 1 and entity j of collection 2: the rarer the shared
// grams, the higher the similarity. Grams that appear only once in a
// collection would zero the log, so frequencies are floored at 2, and the
// result is capped at 1 after scaling by the smaller vector size, keeping
// scores in [0,1] before the pipeline's min-max normalization.
func (s *Space) ARCS(i, j int) float64 {
	a, b := s.docs1[i], s.docs2[j]
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	ii, jj, sum := 0, 0, 0.0
	for ii < len(a.IDs) && jj < len(b.IDs) {
		switch {
		case a.IDs[ii] < b.IDs[jj]:
			ii++
		case a.IDs[ii] > b.IDs[jj]:
			jj++
		default:
			id := a.IDs[ii]
			df1 := math.Max(2, float64(s.df1[id]))
			df2 := math.Max(2, float64(s.df2[id]))
			sum += math.Ln2 / math.Log(df1*df2)
			ii++
			jj++
		}
	}
	sim := sum / float64(min2(a.Len(), b.Len()))
	if sim > 1 {
		sim = 1
	}
	return sim
}

// Measure names for bag models, as used in the paper (Appendix B,
// category 2): six measures combining ARCS, cosine and Jaccard variants
// with TF or TF-IDF weights.
const (
	MeasureARCS        = "ARCS"
	MeasureCosineTF    = "CosineTF"
	MeasureCosineTFIDF = "CosineTFIDF"
	MeasureJaccard     = "Jaccard"
	MeasureGenJacTF    = "GeneralizedJaccardTF"
	MeasureGenJacTFIDF = "GeneralizedJaccardTFIDF"
)

// Measures returns the six bag-model measure names in a stable order.
func Measures() []string {
	return []string{
		MeasureARCS, MeasureCosineTF, MeasureCosineTFIDF,
		MeasureJaccard, MeasureGenJacTF, MeasureGenJacTFIDF,
	}
}

// Sim computes the named measure between entity i of collection 1 and
// entity j of collection 2. It panics on an unknown measure name, which
// indicates a programming error in the caller's configuration.
func (s *Space) Sim(measure string, i, j int) float64 {
	switch measure {
	case MeasureARCS:
		return s.ARCS(i, j)
	case MeasureCosineTF:
		return Cosine(s.docs1[i], s.docs2[j])
	case MeasureCosineTFIDF:
		return Cosine(s.TFIDF(1, i), s.TFIDF(2, j))
	case MeasureJaccard:
		return JaccardSet(s.docs1[i], s.docs2[j])
	case MeasureGenJacTF:
		return GeneralizedJaccard(s.docs1[i], s.docs2[j])
	case MeasureGenJacTFIDF:
		return GeneralizedJaccard(s.TFIDF(1, i), s.TFIDF(2, j))
	default:
		panic("vector: unknown measure " + measure)
	}
}

// CandidatePairs returns all (i, j) pairs that share at least one gram,
// via an inverted index over collection 1. Pairs that share nothing have
// similarity zero under every bag measure, so this enumerates exactly the
// graph's potential edges.
func (s *Space) CandidatePairs() [][2]int32 {
	index := make(map[int32][]int32) // gram id -> entities of collection 1
	for i, v := range s.docs1 {
		for _, id := range v.IDs {
			index[id] = append(index[id], int32(i))
		}
	}
	var pairs [][2]int32
	seen := make(map[int64]bool)
	for j, v := range s.docs2 {
		for _, id := range v.IDs {
			for _, i := range index[id] {
				key := int64(i)<<32 | int64(j)
				if !seen[key] {
					seen[key] = true
					pairs = append(pairs, [2]int32{i, int32(j)})
				}
			}
		}
	}
	return pairs
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
