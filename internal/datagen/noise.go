package datagen

import (
	"math/rand"
	"strings"
)

// Noise configures the perturbations applied to one side of a generated
// dataset. Each field is a probability in [0,1]. The forms mirror the
// noise the paper attributes to its real datasets: typos and token churn
// in product titles, missing values in the movie datasets, and misplaced
// attribute values ("the author of a publication is added in its title")
// in the bibliographic ones.
type Noise struct {
	// Typo is the per-character probability of an edit (substitution,
	// deletion, insertion or adjacent transposition).
	Typo float64
	// TokenDrop is the per-value probability of dropping one token.
	TokenDrop float64
	// TokenSwap is the per-value probability of swapping two adjacent
	// tokens.
	TokenSwap float64
	// Abbrev is the per-value probability of abbreviating the first
	// token to its initial.
	Abbrev float64
	// Missing is the per-attribute probability of clearing the value.
	Missing float64
	// Misplace is the per-profile probability of appending one
	// attribute's value to another attribute and clearing the source.
	Misplace float64
}

const typoAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// typos applies per-character edits to s.
func typos(rng *rand.Rand, s string, p float64) string {
	if p <= 0 || s == "" {
		return s
	}
	r := []rune(s)
	out := make([]rune, 0, len(r)+2)
	for i := 0; i < len(r); i++ {
		if rng.Float64() >= p {
			out = append(out, r[i])
			continue
		}
		switch rng.Intn(4) {
		case 0: // substitute
			out = append(out, rune(typoAlphabet[rng.Intn(len(typoAlphabet))]))
		case 1: // delete
		case 2: // insert
			out = append(out, rune(typoAlphabet[rng.Intn(len(typoAlphabet))]), r[i])
		default: // transpose with next
			if i+1 < len(r) {
				out = append(out, r[i+1], r[i])
				i++
			} else {
				out = append(out, r[i])
			}
		}
	}
	return string(out)
}

// dropToken removes one random token from a multi-token value.
func dropToken(rng *rand.Rand, s string) string {
	tokens := strings.Fields(s)
	if len(tokens) < 2 {
		return s
	}
	i := rng.Intn(len(tokens))
	return strings.Join(append(tokens[:i], tokens[i+1:]...), " ")
}

// swapTokens exchanges two adjacent tokens.
func swapTokens(rng *rand.Rand, s string) string {
	tokens := strings.Fields(s)
	if len(tokens) < 2 {
		return s
	}
	i := rng.Intn(len(tokens) - 1)
	tokens[i], tokens[i+1] = tokens[i+1], tokens[i]
	return strings.Join(tokens, " ")
}

// abbreviate shortens the first token to its initial.
func abbreviate(s string) string {
	tokens := strings.Fields(s)
	if len(tokens) < 2 || len(tokens[0]) < 2 {
		return s
	}
	tokens[0] = tokens[0][:1] + "."
	return strings.Join(tokens, " ")
}

// Apply perturbs a profile's attributes in place according to the noise
// configuration. protected attributes are never cleared (used to keep the
// uniqueness-bearing attribute of each domain intact).
func (n Noise) Apply(rng *rand.Rand, attrs map[string]string, attrNames []string, protected map[string]bool) {
	// Misplace first, so the moved text is subject to value noise too.
	if n.Misplace > 0 && rng.Float64() < n.Misplace && len(attrNames) >= 2 {
		from := attrNames[rng.Intn(len(attrNames))]
		to := attrNames[rng.Intn(len(attrNames))]
		if from != to && attrs[from] != "" && !protected[from] {
			if attrs[to] == "" {
				attrs[to] = attrs[from]
			} else {
				attrs[to] = attrs[to] + " " + attrs[from]
			}
			attrs[from] = ""
		}
	}
	nonEmpty := 0
	for _, a := range attrNames {
		if attrs[a] != "" {
			nonEmpty++
		}
	}
	for _, a := range attrNames {
		v := attrs[a]
		if v == "" {
			continue
		}
		// Never clear the last remaining value: every generated profile
		// must keep at least one name-value pair.
		if n.Missing > 0 && !protected[a] && nonEmpty > 1 && rng.Float64() < n.Missing {
			attrs[a] = ""
			nonEmpty--
			continue
		}
		if n.TokenDrop > 0 && rng.Float64() < n.TokenDrop {
			v = dropToken(rng, v)
		}
		if n.TokenSwap > 0 && rng.Float64() < n.TokenSwap {
			v = swapTokens(rng, v)
		}
		if n.Abbrev > 0 && rng.Float64() < n.Abbrev {
			v = abbreviate(v)
		}
		v = typos(rng, v, n.Typo)
		attrs[a] = v
	}
}
