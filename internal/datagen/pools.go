package datagen

// Word pools for the synthetic domain generators. They are intentionally
// large enough that combinatorial value generation rarely collides, and
// themed per domain so that schema-agnostic similarity behaves like it
// does on the paper's real datasets (shared vocabulary between matches,
// sparse overlap between non-matches).

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
	"lisa", "daniel", "nancy", "matthew", "betty", "anthony", "margaret",
	"mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
	"emily", "andrew", "donna", "joshua", "michelle", "kenneth", "carol",
	"kevin", "amanda", "brian", "dorothy", "george", "melissa", "timothy",
	"deborah", "ronald", "stephanie", "edward", "rebecca", "jason", "sharon",
	"jeffrey", "laura", "ryan", "cynthia",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
	"parker", "cruz", "edwards", "collins", "reyes",
}

var cities = []string{
	"new york", "los angeles", "chicago", "houston", "phoenix",
	"philadelphia", "san antonio", "san diego", "dallas", "san jose",
	"austin", "jacksonville", "fort worth", "columbus", "charlotte",
	"san francisco", "indianapolis", "seattle", "denver", "boston",
	"el paso", "nashville", "detroit", "portland", "memphis",
	"oklahoma city", "las vegas", "louisville", "baltimore", "milwaukee",
}

var streets = []string{
	"main st", "oak ave", "maple dr", "cedar ln", "park blvd", "elm st",
	"washington ave", "lake rd", "hill st", "sunset blvd", "river rd",
	"church st", "broadway", "market st", "highland ave", "union st",
	"franklin ave", "spring st", "prospect ave", "grove st",
}

var cuisines = []string{
	"italian", "french", "chinese", "mexican", "japanese", "thai",
	"indian", "greek", "spanish", "korean", "vietnamese", "american",
	"lebanese", "turkish", "ethiopian", "peruvian", "brazilian", "german",
}

var restaurantAdjectives = []string{
	"golden", "silver", "royal", "grand", "little", "old", "blue",
	"red", "green", "happy", "lucky", "cozy", "rustic", "urban",
	"coastal", "sunny", "twin", "hidden", "wild", "gentle",
}

var restaurantNouns = []string{
	"dragon", "garden", "palace", "kitchen", "table", "bistro", "grill",
	"tavern", "house", "corner", "terrace", "harvest", "olive", "lantern",
	"anchor", "spoon", "fork", "hearth", "orchard", "pepper",
}

var brands = []string{
	"sony", "samsung", "panasonic", "canon", "nikon", "apple", "dell",
	"lenovo", "asus", "acer", "philips", "bosch", "braun", "dyson",
	"logitech", "garmin", "jbl", "epson", "brother", "toshiba",
	"sharp", "whirlpool", "kenmore", "sandisk", "kingston", "netgear",
	"linksys", "belkin", "olympus", "pioneer",
}

var productNouns = []string{
	"camera", "laptop", "monitor", "printer", "router", "headphones",
	"speaker", "keyboard", "mouse", "tablet", "phone", "television",
	"microwave", "blender", "toaster", "vacuum", "drill", "charger",
	"projector", "scanner", "refrigerator", "dishwasher", "smartwatch",
	"drone", "webcam", "microphone", "amplifier", "turntable",
}

var productQualifiers = []string{
	"wireless", "portable", "digital", "compact", "professional",
	"ultra", "premium", "smart", "hd", "4k", "bluetooth", "rechargeable",
	"stainless", "ergonomic", "gaming", "noise cancelling", "waterproof",
	"dual band", "high speed", "energy efficient",
}

var colors = []string{
	"black", "white", "silver", "gray", "blue", "red", "green", "gold",
}

var researchAdjectives = []string{
	"efficient", "scalable", "adaptive", "distributed", "parallel",
	"incremental", "robust", "approximate", "optimal", "unsupervised",
	"probabilistic", "declarative", "interactive", "streaming", "secure",
	"federated", "progressive", "holistic", "dynamic", "learned",
}

var researchNouns = []string{
	"query processing", "entity resolution", "schema matching",
	"data integration", "graph matching", "record linkage",
	"index structures", "join algorithms", "data cleaning",
	"similarity search", "transaction management", "view maintenance",
	"query optimization", "data warehousing", "stream processing",
	"knowledge graphs", "data provenance", "crowdsourcing",
	"duplicate detection", "blocking techniques", "skyline queries",
	"spatial indexing", "time series analysis", "text analytics",
}

var researchContexts = []string{
	"relational databases", "large scale systems", "the web",
	"sensor networks", "social networks", "cloud platforms",
	"heterogeneous sources", "big data", "column stores",
	"main memory systems", "distributed environments", "data lakes",
	"graph databases", "key value stores", "mobile devices",
}

var venues = []string{
	"sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "www", "pods",
	"tods", "tkde", "pvldb", "icdt", "dasfaa", "ssdbm", "wsdm",
}

var movieAdjectives = []string{
	"last", "dark", "silent", "broken", "eternal", "lost", "hidden",
	"final", "distant", "burning", "frozen", "golden", "crimson",
	"endless", "secret", "savage", "gentle", "midnight", "electric",
	"forgotten",
}

var movieNouns = []string{
	"kingdom", "horizon", "shadow", "river", "empire", "journey",
	"promise", "storm", "garden", "echo", "harbor", "legacy", "summer",
	"winter", "dream", "road", "island", "castle", "fire", "ocean",
	"mountain", "city", "night", "dawn", "star",
}

var genres = []string{
	"drama", "comedy", "thriller", "action", "romance", "documentary",
	"horror", "science fiction", "animation", "crime", "adventure",
	"fantasy", "mystery", "western", "musical",
}

var languages = []string{
	"english", "french", "spanish", "german", "italian", "japanese",
	"korean", "mandarin", "hindi", "portuguese",
}
