package datagen

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/strsim"
)

func TestSpecsShape(t *testing.T) {
	specs := Specs()
	if len(specs) != 10 {
		t.Fatalf("Specs: %d, want 10", len(specs))
	}
	wantCat := map[string]Category{
		"D1": Scarce, "D2": Balanced, "D3": OneSided, "D4": Balanced,
		"D5": Scarce, "D6": Scarce, "D7": Scarce, "D8": Scarce,
		"D9": OneSided, "D10": Balanced,
	}
	for i, s := range specs {
		if s.ID == "" || s.N1 <= 0 || s.N2 <= 0 || s.Dupes <= 0 {
			t.Fatalf("spec %d incomplete: %+v", i, s)
		}
		if s.Dupes > s.N1 || s.Dupes > s.N2 {
			t.Fatalf("%s: more dupes than entities", s.ID)
		}
		if got := wantCat[s.ID]; got != s.Category {
			t.Fatalf("%s category = %s, want %s", s.ID, s.Category, got)
		}
		if len(s.KeyAttrs) == 0 {
			t.Fatalf("%s has no key attributes", s.ID)
		}
		for _, k := range s.KeyAttrs {
			if !contains(s.Attrs1, k) && !contains(s.Attrs2, k) {
				t.Fatalf("%s key attribute %q not in either schema", s.ID, k)
			}
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestSpecByID(t *testing.T) {
	s, err := SpecByID("D4")
	if err != nil || s.ID != "D4" {
		t.Fatalf("SpecByID(D4) = %v, %v", s.ID, err)
	}
	if _, err := SpecByID("D11"); err == nil {
		t.Fatal("SpecByID accepted unknown id")
	}
}

func TestGenerateSizesAndGroundTruth(t *testing.T) {
	for _, s := range Specs() {
		task := s.Generate(7, 0.05)
		n1, n2 := task.V1.Len(), task.V2.Len()
		if n1 < minSide || n2 < minSide {
			t.Fatalf("%s: sides too small (%d,%d)", s.ID, n1, n2)
		}
		if err := task.GT.Validate(n1, n2); err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if task.GT.Len() == 0 {
			t.Fatalf("%s: empty ground truth", s.ID)
		}
		if task.GT.Len() > n1 || task.GT.Len() > n2 {
			t.Fatalf("%s: more matches than entities", s.ID)
		}
		// Size ratio shape: side 2 bigger iff Table 2 says so (within
		// slack for the minSide floor).
		if s.N2 > s.N1*2 && n2 <= n1 {
			t.Fatalf("%s: size ratio lost (%d,%d)", s.ID, n1, n2)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := SpecByID("D2")
	a := s.Generate(42, 0.05)
	b := s.Generate(42, 0.05)
	if !reflect.DeepEqual(a.V1, b.V1) || !reflect.DeepEqual(a.V2, b.V2) ||
		!reflect.DeepEqual(a.GT.Pairs, b.GT.Pairs) {
		t.Fatal("Generate is not deterministic for a fixed seed")
	}
	c := s.Generate(43, 0.05)
	if reflect.DeepEqual(a.V1, c.V1) {
		t.Fatal("different seeds produced identical data")
	}
}

// Matched pairs must be textually closer than random non-matched pairs on
// average — otherwise the generated ground truth is meaningless.
func TestGenerateMatchesAreSimilar(t *testing.T) {
	for _, s := range Specs() {
		task := s.Generate(11, 0.05)
		texts1 := task.V1.Texts()
		texts2 := task.V2.Texts()
		simOf := func(i, j int32) float64 {
			return strsim.GeneralizedJaccard(
				strsim.Tokenize(texts1[i]), strsim.Tokenize(texts2[j]))
		}
		rng := rand.New(rand.NewSource(3))
		matchSum, n := 0.0, 0
		for _, p := range task.GT.Pairs {
			matchSum += simOf(p[0], p[1])
			n++
		}
		randSum, rn := 0.0, 0
		for k := 0; k < 300; k++ {
			i := int32(rng.Intn(task.V1.Len()))
			j := int32(rng.Intn(task.V2.Len()))
			if task.GT.IsMatch(i, j) {
				continue
			}
			randSum += simOf(i, j)
			rn++
		}
		matchAvg := matchSum / float64(n)
		randAvg := randSum / float64(rn)
		if matchAvg <= randAvg+0.05 {
			t.Fatalf("%s: matches (%.3f) not clearly more similar than random pairs (%.3f)",
				s.ID, matchAvg, randAvg)
		}
	}
}

func TestNoiseForms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	t.Run("typos", func(t *testing.T) {
		changed := 0
		for i := 0; i < 100; i++ {
			if typos(rng, "hello world example", 0.1) != "hello world example" {
				changed++
			}
		}
		if changed < 50 {
			t.Fatalf("typos changed only %d/100", changed)
		}
		if typos(rng, "abc", 0) != "abc" {
			t.Fatal("zero-probability typos changed the string")
		}
	})

	t.Run("dropToken", func(t *testing.T) {
		if got := dropToken(rng, "single"); got != "single" {
			t.Fatalf("dropToken on single token = %q", got)
		}
		got := dropToken(rng, "a b c")
		if len(strsim.Tokenize(got)) != 2 {
			t.Fatalf("dropToken result %q does not have 2 tokens", got)
		}
	})

	t.Run("swapTokens", func(t *testing.T) {
		got := swapTokens(rng, "a b")
		if got != "b a" {
			t.Fatalf("swapTokens = %q, want %q", got, "b a")
		}
	})

	t.Run("abbreviate", func(t *testing.T) {
		if got := abbreviate("george papadakis"); got != "g. papadakis" {
			t.Fatalf("abbreviate = %q", got)
		}
		if got := abbreviate("x"); got != "x" {
			t.Fatalf("abbreviate single short token = %q", got)
		}
	})

	t.Run("misplace", func(t *testing.T) {
		moved := 0
		for i := 0; i < 200; i++ {
			attrs := map[string]string{"title": "some title", "authors": "a b"}
			n := Noise{Misplace: 1}
			n.Apply(rng, attrs, []string{"title", "authors"}, nil)
			if attrs["title"] == "" || attrs["authors"] == "" {
				moved++
			}
		}
		if moved < 50 {
			t.Fatalf("misplace moved only %d/200", moved)
		}
	})

	t.Run("missing protects unique attr", func(t *testing.T) {
		for i := 0; i < 100; i++ {
			attrs := map[string]string{"title": "x y", "modelno": "AB-1"}
			n := Noise{Missing: 1}
			n.Apply(rng, attrs, []string{"title", "modelno"}, map[string]bool{"modelno": true})
			if attrs["modelno"] == "" {
				t.Fatal("protected attribute was cleared")
			}
			if attrs["title"] != "" {
				t.Fatal("Missing=1 did not clear an unprotected attribute")
			}
		}
	})
}

func TestDomainGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []Domain{Restaurants, Products, Bibliographic, Movies} {
		attrs := d.generate(rng, 123)
		if len(attrs) < 4 {
			t.Fatalf("%s: only %d attributes", d, len(attrs))
		}
		if u := d.uniqueAttr(); attrs[u] == "" {
			t.Fatalf("%s: unique attribute %q empty", d, u)
		}
		for k, v := range attrs {
			if v == "" {
				t.Fatalf("%s: empty value for %q", d, k)
			}
		}
	}
}

func TestUniqueAttrDistinguishesEntities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []Domain{Restaurants, Products, Bibliographic} {
		seen := map[string]bool{}
		for i := 0; i < 500; i++ {
			v := d.generate(rng, i)[d.uniqueAttr()]
			if seen[v] {
				t.Fatalf("%s: unique attribute collided at %d: %q", d, i, v)
			}
			seen[v] = true
		}
	}
}

func TestTaskJSONRoundTrip(t *testing.T) {
	s, _ := SpecByID("D1")
	task := s.Generate(5, 0.05)
	var buf bytes.Buffer
	if err := task.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadTaskJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.V1.Len() != task.V1.Len() || back.V2.Len() != task.V2.Len() ||
		back.GT.Len() != task.GT.Len() {
		t.Fatal("round trip changed sizes")
	}
	if !back.GT.IsMatch(task.GT.Pairs[0][0], task.GT.Pairs[0][1]) {
		t.Fatal("round trip lost ground truth")
	}
}

// Any (seed, scale) yields structurally valid tasks.
func TestPropertyGenerateValid(t *testing.T) {
	specs := Specs()
	f := func(seed int64, which uint8) bool {
		s := specs[int(which)%len(specs)]
		task := s.Generate(seed, 0.02)
		if err := task.GT.Validate(task.V1.Len(), task.V2.Len()); err != nil {
			return false
		}
		// Every profile carries at least one non-empty value.
		for _, p := range task.V1.Profiles {
			if p.NumPairs() == 0 {
				return false
			}
		}
		for _, p := range task.V2.Profiles {
			if p.NumPairs() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScaledSizesPredictGenerate(t *testing.T) {
	spec, err := SpecByID("D2")
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{0.01, 0.02, 0.1} {
		n1, n2 := spec.ScaledSizes(scale)
		task := spec.Generate(1, scale)
		if task.V1.Len() != n1 || task.V2.Len() != n2 {
			t.Fatalf("scale %g: predicted %d/%d, generated %d/%d",
				scale, n1, n2, task.V1.Len(), task.V2.Len())
		}
	}
	// Absurd scales saturate instead of overflowing into negative sizes.
	n1, n2 := spec.ScaledSizes(1e30)
	if n1 <= 0 || n2 <= 0 {
		t.Fatalf("huge scale produced non-positive sizes %d/%d", n1, n2)
	}
	if n1, _ := spec.ScaledSizes(math.NaN()); n1 != 25 {
		t.Fatalf("NaN scale = %d, want the 25 floor", n1)
	}
}
