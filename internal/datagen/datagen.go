// Package datagen generates seeded synthetic Clean-Clean ER tasks that
// mirror the ten real-world datasets of the paper's Table 2: the same
// domains (restaurants, products, bibliographic, movies), the same
// balanced/one-sided/scarce duplicate structure, proportionally the same
// collection sizes, and the noise forms the paper attributes to each
// dataset (typos in product titles, missing values in the movie datasets,
// misplaced attribute values in the bibliographic ones).
//
// The paper's real datasets cannot ship with this repository; DESIGN.md
// records this substitution and why it preserves the evaluation's
// behaviour. Absolute sizes are controlled by a scale factor so the full
// experiment corpus runs on a laptop.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ccer-go/ccer/internal/dataset"
)

// Category classifies a dataset by the portion of matched entities, as in
// the paper's QE(4) analysis.
type Category string

const (
	// Balanced (BLC): the vast majority of both sides is matched
	// (D2, D4, D10).
	Balanced Category = "BLC"
	// OneSided (OSD): the vast majority of one side is matched
	// (D3, D9).
	OneSided Category = "OSD"
	// Scarce (SCR): only a small portion of either side is matched
	// (D1, D5-D8).
	Scarce Category = "SCR"
)

// Spec describes one synthetic dataset analog.
type Spec struct {
	// ID is the paper's dataset identifier, e.g. "D2".
	ID string
	// Name1, Name2 name the two sources, e.g. "Abt"/"Buy".
	Name1, Name2 string
	// Domain selects the value generator.
	Domain Domain
	// N1, N2, Dupes are the full-scale sizes of Table 2; Generate
	// multiplies them by its scale argument.
	N1, N2, Dupes int
	// Attrs1, Attrs2 are the attribute schemas of the two sides.
	Attrs1, Attrs2 []string
	// KeyAttrs are the high-coverage, high-distinctiveness attributes
	// used for the schema-based similarity settings (Section 5).
	KeyAttrs []string
	// Noise1, Noise2 configure the per-side perturbations.
	Noise1, Noise2 Noise
	// Category is the duplicate-structure class.
	Category Category
}

// Specs returns the analogs of the paper's D1-D10 in order.
func Specs() []Spec {
	lightTypos := Noise{Typo: 0.005, TokenSwap: 0.05, Abbrev: 0.05}
	productNoise := Noise{Typo: 0.015, TokenDrop: 0.25, TokenSwap: 0.15, Missing: 0.15}
	bibNoise := Noise{Typo: 0.004, TokenDrop: 0.08, Abbrev: 0.20, Misplace: 0.25}
	movieNoise := Noise{Typo: 0.01, TokenDrop: 0.10, Missing: 0.35}

	return []Spec{
		{
			ID: "D1", Name1: "Rest.1", Name2: "Rest.2", Domain: Restaurants,
			N1: 339, N2: 2256, Dupes: 89,
			Attrs1:   []string{"name", "phone", "address", "city", "cuisine", "type", "owner"},
			Attrs2:   []string{"name", "phone", "address", "city", "cuisine", "type", "owner"},
			KeyAttrs: []string{"name", "phone"},
			Noise1:   lightTypos, Noise2: Noise{Typo: 0.008, TokenSwap: 0.05, Missing: 0.10},
			Category: Scarce,
		},
		{
			ID: "D2", Name1: "Abt", Name2: "Buy", Domain: Products,
			N1: 1076, N2: 1076, Dupes: 1076,
			Attrs1:   []string{"name", "description", "price"},
			Attrs2:   []string{"name", "description", "price"},
			KeyAttrs: []string{"name"},
			Noise1:   Noise{Typo: 0.01, TokenDrop: 0.15, TokenSwap: 0.1},
			Noise2:   productNoise,
			Category: Balanced,
		},
		{
			ID: "D3", Name1: "Amazon", Name2: "Google Pr.", Domain: Products,
			N1: 1354, N2: 3039, Dupes: 1104,
			Attrs1:   []string{"title", "description", "brand", "price"},
			Attrs2:   []string{"title", "description", "brand", "price"},
			KeyAttrs: []string{"title"},
			Noise1:   Noise{Typo: 0.01, TokenDrop: 0.1, TokenSwap: 0.1},
			Noise2:   Noise{Typo: 0.02, TokenDrop: 0.3, TokenSwap: 0.2, Missing: 0.2},
			Category: OneSided,
		},
		{
			ID: "D4", Name1: "DBLP", Name2: "ACM", Domain: Bibliographic,
			N1: 2616, N2: 2294, Dupes: 2224,
			Attrs1:   []string{"title", "authors", "venue", "year"},
			Attrs2:   []string{"title", "authors", "venue", "year"},
			KeyAttrs: []string{"title", "authors"},
			Noise1:   Noise{Typo: 0.003, Abbrev: 0.15},
			Noise2:   bibNoise,
			Category: Balanced,
		},
		{
			ID: "D5", Name1: "IMDb", Name2: "TMDb", Domain: Movies,
			N1: 5118, N2: 6056, Dupes: 1968,
			Attrs1:   []string{"title", "name", "year", "director", "actors", "genre", "language", "runtime"},
			Attrs2:   []string{"title", "name", "year", "director", "actors", "genre", "language", "runtime"},
			KeyAttrs: []string{"title"},
			Noise1:   Noise{Typo: 0.005, Missing: 0.15},
			Noise2:   movieNoise,
			Category: Scarce,
		},
		{
			ID: "D6", Name1: "IMDb", Name2: "TVDB", Domain: Movies,
			N1: 5118, N2: 7810, Dupes: 1072,
			Attrs1:   []string{"title", "name", "year", "director", "actors", "genre", "language", "runtime"},
			Attrs2:   []string{"title", "year", "director", "genre", "language", "runtime"},
			KeyAttrs: []string{"title"},
			Noise1:   Noise{Typo: 0.005, Missing: 0.15},
			Noise2:   Noise{Typo: 0.015, TokenDrop: 0.15, Missing: 0.40},
			Category: Scarce,
		},
		{
			ID: "D7", Name1: "TMDb", Name2: "TVDB", Domain: Movies,
			N1: 6056, N2: 7810, Dupes: 1095,
			Attrs1:   []string{"title", "name", "year", "director", "actors", "genre", "language", "runtime"},
			Attrs2:   []string{"title", "year", "director", "genre", "language", "runtime"},
			KeyAttrs: []string{"name", "title"},
			Noise1:   movieNoise,
			Noise2:   Noise{Typo: 0.015, TokenDrop: 0.15, Missing: 0.40},
			Category: Scarce,
		},
		{
			ID: "D8", Name1: "Walmart", Name2: "Amazon", Domain: Products,
			N1: 2554, N2: 22074, Dupes: 853,
			Attrs1:   []string{"title", "modelno", "brand", "price", "category", "description"},
			Attrs2:   []string{"title", "modelno", "brand", "price", "category", "description"},
			KeyAttrs: []string{"title", "modelno"},
			Noise1:   productNoise,
			Noise2:   Noise{Typo: 0.02, TokenDrop: 0.3, TokenSwap: 0.2, Missing: 0.25},
			Category: Scarce,
		},
		{
			ID: "D9", Name1: "DBLP", Name2: "Scholar", Domain: Bibliographic,
			N1: 2516, N2: 61353, Dupes: 2308,
			Attrs1:   []string{"title", "authors", "venue", "year"},
			Attrs2:   []string{"title", "authors", "venue", "year", "abstract"},
			KeyAttrs: []string{"title", "authors"},
			Noise1:   Noise{Typo: 0.003, Abbrev: 0.15},
			Noise2:   Noise{Typo: 0.012, TokenDrop: 0.15, Abbrev: 0.3, Misplace: 0.35, Missing: 0.2},
			Category: OneSided,
		},
		{
			ID: "D10", Name1: "IMDb", Name2: "DBpedia", Domain: Movies,
			N1: 27615, N2: 23182, Dupes: 22863,
			Attrs1:   []string{"title", "name", "year", "director"},
			Attrs2:   []string{"title", "year", "director", "actors", "genre", "language", "runtime"},
			KeyAttrs: []string{"title"},
			Noise1:   Noise{Typo: 0.006, Missing: 0.30},
			Noise2:   Noise{Typo: 0.012, TokenDrop: 0.12, Missing: 0.45},
			Category: Balanced,
		},
	}
}

// SpecByID returns the spec with the given ID ("D1".."D10") or an error.
func SpecByID(id string) (Spec, error) {
	for _, s := range Specs() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datagen: unknown dataset %q", id)
}

// minSide is the smallest generated collection size, so that heavily
// scaled-down datasets stay meaningful.
const minSide = 25

// scaled returns max(minSide, round(n*scale)), saturating at MaxInt32
// so an absurd scale cannot overflow into a negative size (and a
// makeslice panic) downstream.
func scaled(n int, scale float64) int {
	v := math.Round(float64(n) * scale)
	if math.IsNaN(v) || v < minSide {
		return minSide
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}

// ScaledSizes reports the collection sizes Generate would produce at
// the given scale, without materializing anything. Services use it to
// enforce resource caps before paying for generation.
func (s Spec) ScaledSizes(scale float64) (n1, n2 int) {
	return scaled(s.N1, scale), scaled(s.N2, scale)
}

// Generate builds the synthetic task for the spec. The same (seed, scale)
// always produces the same task. Scale multiplies the Table 2 sizes;
// scale=1 reproduces them in full.
func (s Spec) Generate(seed int64, scale float64) *dataset.Task {
	rng := rand.New(rand.NewSource(seed))
	n1 := scaled(s.N1, scale)
	n2 := scaled(s.N2, scale)
	dupes := scaled(s.Dupes, scale)
	if m := min2(n1, n2); dupes > m {
		dupes = m
	}

	// Base entities: the first `dupes` are shared; the rest are unique
	// to one side.
	totalBase := n1 + n2 - dupes
	base := make([]map[string]string, totalBase)
	for i := range base {
		base[i] = s.Domain.generate(rng, i)
	}

	protected := map[string]bool{s.Domain.uniqueAttr(): true}

	render := func(baseIdx int, side int, pos int) dataset.Profile {
		src := base[baseIdx]
		var schema []string
		var noise Noise
		var name string
		if side == 1 {
			schema, noise, name = s.Attrs1, s.Noise1, s.Name1
		} else {
			schema, noise, name = s.Attrs2, s.Noise2, s.Name2
		}
		attrs := make(map[string]string, len(schema))
		for _, a := range schema {
			attrs[a] = src[a]
		}
		noise.Apply(rng, attrs, schema, protected)
		return dataset.Profile{
			ID:    fmt.Sprintf("%s-%s-%d", s.ID, name, pos),
			Attrs: attrs,
		}
	}

	v1 := &dataset.Collection{Name: s.Name1, Profiles: make([]dataset.Profile, 0, n1)}
	v2 := &dataset.Collection{Name: s.Name2, Profiles: make([]dataset.Profile, 0, n2)}
	var pairs [][2]int32

	// Shared entities appear in both sides.
	for i := 0; i < dupes; i++ {
		v1.Profiles = append(v1.Profiles, render(i, 1, i))
		v2.Profiles = append(v2.Profiles, render(i, 2, i))
		pairs = append(pairs, [2]int32{int32(i), int32(i)})
	}
	// Side-unique entities.
	for i := dupes; i < n1; i++ {
		v1.Profiles = append(v1.Profiles, render(i, 1, i))
	}
	for i := n1; i < totalBase; i++ {
		v2.Profiles = append(v2.Profiles, render(i, 2, dupes+(i-n1)))
	}

	// Shuffle each side so matched pairs are not positionally aligned.
	// permute places original index i at position perm[i], so ground
	// truth indexes map through perm directly.
	perm1 := rng.Perm(n1)
	perm2 := rng.Perm(n2)
	v1.Profiles = permute(v1.Profiles, perm1)
	v2.Profiles = permute(v2.Profiles, perm2)
	for k, p := range pairs {
		pairs[k] = [2]int32{int32(perm1[p[0]]), int32(perm2[p[1]])}
	}

	return &dataset.Task{
		Name: s.ID,
		V1:   v1,
		V2:   v2,
		GT:   dataset.NewGroundTruth(pairs),
	}
}

// permute returns profiles rearranged so that output[perm[i]] = input[i].
func permute(profiles []dataset.Profile, perm []int) []dataset.Profile {
	out := make([]dataset.Profile, len(profiles))
	for i, p := range perm {
		out[p] = profiles[i]
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
