package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Domain identifies a synthetic data domain, mirroring the domains of the
// paper's ten datasets.
type Domain int

const (
	// Restaurants mirrors D1 (OAEI restaurants).
	Restaurants Domain = iota
	// Products mirrors D2, D3 and D8 (Abt-Buy, Amazon-Google,
	// Walmart-Amazon).
	Products
	// Bibliographic mirrors D4 and D9 (DBLP-ACM, DBLP-Scholar).
	Bibliographic
	// Movies mirrors D5-D7 and D10 (IMDb/TMDb/TVDB, IMDb-DBpedia).
	Movies
)

// String returns the domain name.
func (d Domain) String() string {
	switch d {
	case Restaurants:
		return "restaurants"
	case Products:
		return "products"
	case Bibliographic:
		return "bibliographic"
	case Movies:
		return "movies"
	default:
		return fmt.Sprintf("domain(%d)", int(d))
	}
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

// base36 renders idx compactly; embedded into a uniqueness-bearing
// attribute so that two distinct base entities can never collide.
func base36(idx int) string {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	if idx == 0 {
		return "0"
	}
	var b []byte
	for idx > 0 {
		b = append([]byte{digits[idx%36]}, b...)
		idx /= 36
	}
	return string(b)
}

// generate produces the full clean attribute map of base entity idx in
// the domain. One attribute per domain embeds idx, guaranteeing that
// distinct base entities are distinguishable (the clean-collection
// property). The returned map is the superset of attributes; each dataset
// side projects a subset.
func (d Domain) generate(rng *rand.Rand, idx int) map[string]string {
	switch d {
	case Restaurants:
		name := fmt.Sprintf("%s %s %s", pick(rng, restaurantAdjectives),
			pick(rng, restaurantNouns), pick(rng, []string{"bistro", "grill", "cafe", "house", "tavern"}))
		return map[string]string{
			"name":    name,
			"phone":   fmt.Sprintf("(%03d) %03d-%04d", 200+(idx/10000000)%700, (idx/10000)%1000, idx%10000),
			"address": fmt.Sprintf("%d %s", 1+idx%980, pick(rng, streets)),
			"city":    pick(rng, cities),
			"cuisine": pick(rng, cuisines),
			"type":    pick(rng, []string{"casual", "fine dining", "fast food", "family"}),
			"owner":   pick(rng, firstNames) + " " + pick(rng, lastNames),
		}
	case Products:
		brand := pick(rng, brands)
		noun := pick(rng, productNouns)
		model := fmt.Sprintf("%s%d-%s", strings.ToUpper(brand[:2]),
			100+rng.Intn(900), strings.ToUpper(base36(idx)))
		title := fmt.Sprintf("%s %s %s %s %s", brand, pick(rng, productQualifiers),
			noun, model, pick(rng, colors))
		return map[string]string{
			"title":       title,
			"name":        fmt.Sprintf("%s %s %s", brand, noun, model),
			"brand":       brand,
			"modelno":     model,
			"price":       fmt.Sprintf("%d.%02d", 10+rng.Intn(990), rng.Intn(100)),
			"category":    noun + "s",
			"description": fmt.Sprintf("%s %s with %s design", pick(rng, productQualifiers), noun, pick(rng, productQualifiers)),
		}
	case Bibliographic:
		numAuthors := 1 + rng.Intn(3)
		authors := make([]string, numAuthors)
		for i := range authors {
			authors[i] = pick(rng, firstNames) + " " + pick(rng, lastNames)
		}
		topic := pick(rng, researchNouns)
		title := fmt.Sprintf("%s %s for %s", pick(rng, researchAdjectives),
			topic, pick(rng, researchContexts))
		year := 1995 + idx%27
		return map[string]string{
			"title":    title,
			"authors":  strings.Join(authors, ", "),
			"venue":    pick(rng, venues),
			"year":     fmt.Sprintf("%d", year),
			"pages":    fmt.Sprintf("%d-%d", 1+idx, 12+idx),
			"abstract": fmt.Sprintf("we study %s in %s and present a %s approach evaluated on %s workloads", topic, pick(rng, researchContexts), pick(rng, researchAdjectives), pick(rng, researchContexts)),
		}
	case Movies:
		title := fmt.Sprintf("the %s %s", pick(rng, movieAdjectives), pick(rng, movieNouns))
		if rng.Intn(3) == 0 {
			title += " " + pick(rng, movieNouns)
		}
		year := 1950 + idx%73
		return map[string]string{
			"title":    title,
			"name":     title + fmt.Sprintf(" (%d)", year),
			"year":     fmt.Sprintf("%d", year),
			"director": pick(rng, firstNames) + " " + pick(rng, lastNames),
			"actors": pick(rng, firstNames) + " " + pick(rng, lastNames) + ", " +
				pick(rng, firstNames) + " " + pick(rng, lastNames),
			"genre":    pick(rng, genres),
			"language": pick(rng, languages),
			"runtime":  fmt.Sprintf("%d min", 75+idx%110),
		}
	default:
		panic("datagen: unknown domain")
	}
}

// uniqueAttr names the attribute of each domain that embeds the base
// entity index; it is protected from the Missing noise so that distinct
// base entities remain distinguishable (exactly so for phone, modelno and
// pages; movies keep realistic remake-style collisions, as the real IMDb
// datasets do).
func (d Domain) uniqueAttr() string {
	switch d {
	case Restaurants:
		return "phone"
	case Products:
		return "modelno"
	case Bibliographic:
		return "pages"
	case Movies:
		return "runtime"
	default:
		return ""
	}
}
