package exp

import (
	"fmt"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/eval"
)

// AblationThresholdData compares three threshold-selection policies per
// algorithm: the paper's swept oracle (largest t with max F1, requiring
// ground truth), the unsupervised estimate of eval.EstimateThreshold,
// and a fixed t=0.5.
type AblationThresholdData struct {
	Algorithms []string
	// MeanF1[policy][alg]: policy 0 = swept oracle, 1 = estimated,
	// 2 = fixed 0.5.
	MeanF1 [3][]float64
}

// PolicyNames labels the threshold policies of AblationThreshold.
var PolicyNames = [3]string{"swept oracle", "estimated (no labels)", "fixed t=0.5"}

// AblationThreshold quantifies how much of the oracle-tuned F1 survives
// without ground-truth tuning — the ablation of the paper's threshold
// selection rule called out in DESIGN.md.
func (c *Corpus) AblationThreshold() (AblationThresholdData, Table) {
	algs := c.Algorithms()
	k := len(algs)
	d := AblationThresholdData{Algorithms: algs}
	for p := range d.MeanF1 {
		d.MeanF1[p] = make([]float64, k)
	}
	if len(c.Graphs) == 0 {
		return d, Table{Title: "Ablation: threshold selection (empty corpus)"}
	}
	matchers := c.Config.Matchers()
	for _, gr := range c.Graphs {
		est := eval.EstimateThreshold(gr.Graph.G)
		gt := c.Tasks[gr.Graph.Dataset].GT
		for i, m := range matchers {
			d.MeanF1[0][i] += gr.Results[i].Best.F1
			d.MeanF1[1][i] += eval.Evaluate(m.Match(gr.Graph.G, est), gt).F1
			d.MeanF1[2][i] += eval.Evaluate(m.Match(gr.Graph.G, 0.5), gt).F1
		}
	}
	n := float64(len(c.Graphs))
	for p := range d.MeanF1 {
		for i := range d.MeanF1[p] {
			d.MeanF1[p][i] /= n
		}
	}

	t := Table{
		Title: fmt.Sprintf("Ablation: threshold selection policies, mean F1 over %d graphs",
			len(c.Graphs)),
		Header: []string{"", PolicyNames[0], PolicyNames[1], PolicyNames[2], "est/oracle"},
	}
	for i, alg := range algs {
		ratio := 0.0
		if d.MeanF1[0][i] > 0 {
			ratio = d.MeanF1[1][i] / d.MeanF1[0][i]
		}
		t.Rows = append(t.Rows, []string{alg,
			f3(d.MeanF1[0][i]), f3(d.MeanF1[1][i]), f3(d.MeanF1[2][i]), f2(ratio)})
	}
	return d, t
}

// AblationBMCBasisData compares BMC's basis choices on effectiveness.
type AblationBMCBasisData struct {
	// MeanF1 per basis: 0 = V1, 1 = V2, 2 = auto (best of both, as the
	// paper tunes it).
	MeanF1 [3]float64
}

// AblationBMCBasis measures how much the paper's per-dataset basis
// tuning buys BMC over fixing either side.
func (c *Corpus) AblationBMCBasis() (AblationBMCBasisData, Table) {
	var d AblationBMCBasisData
	if len(c.Graphs) == 0 {
		return d, Table{Title: "Ablation: BMC basis (empty corpus)"}
	}
	names := [3]string{"BasisV1", "BasisV2", "BasisAuto"}
	matchers := [3]core.Matcher{
		core.BMC{Basis: core.BasisV1},
		core.BMC{Basis: core.BasisV2},
		core.BMC{Basis: core.BasisAuto},
	}
	for _, gr := range c.Graphs {
		gt := c.Tasks[gr.Graph.Dataset].GT
		for bi, m := range matchers {
			d.MeanF1[bi] += eval.Sweep(gr.Graph.G, gt, m, 1).Best.F1
		}
	}
	n := float64(len(c.Graphs))
	for i := range d.MeanF1 {
		d.MeanF1[i] /= n
	}
	t := Table{
		Title:  fmt.Sprintf("Ablation: BMC basis side, mean tuned F1 over %d graphs", len(c.Graphs)),
		Header: []string{"basis", "mean F1"},
	}
	for bi, name := range names {
		t.Rows = append(t.Rows, []string{name, f3(d.MeanF1[bi])})
	}
	return d, t
}
