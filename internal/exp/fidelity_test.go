package exp

// Fidelity tests: assert that the paper's robust qualitative findings
// (Section 6 and the conclusions) hold on the reproduced corpus. These
// test the *shape* of the results — rankings and relations — not absolute
// numbers, which depend on the synthetic data and the host machine.

import (
	"testing"

	"github.com/ccer-go/ccer/internal/simgraph"
)

func rankOf(t *testing.T, d NemenyiData, c *Corpus, alg string) int {
	t.Helper()
	for pos, idx := range d.Order {
		if c.Algorithms()[idx] == alg {
			return pos + 1
		}
	}
	t.Fatalf("algorithm %s not ranked", alg)
	return 0
}

// The paper's Figure 2: KRC, UMC, EXC and BMC rank first on F-measure;
// CNC, RCA, BAH and RSR form the trailing group.
func TestFidelityF1Ranking(t *testing.T) {
	c := sharedCorpus(t)
	d, _, err := c.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, top := range []string{"KRC", "UMC"} {
		if r := rankOf(t, d, c, top); r > 4 {
			t.Errorf("%s ranks %d on F1, paper puts it in the top group", top, r)
		}
	}
	trailing := 0
	for _, low := range []string{"CNC", "RCA", "BAH", "RSR"} {
		if r := rankOf(t, d, c, low); r >= 5 {
			trailing++
		}
	}
	if trailing < 3 {
		t.Errorf("only %d of CNC/RCA/BAH/RSR rank in the bottom four", trailing)
	}
	// The Friedman test must reject the no-difference hypothesis, as in
	// the paper.
	if d.Friedman.PValue > 0.05 {
		t.Errorf("Friedman p = %v, paper rejects at 0.05", d.Friedman.PValue)
	}
}

// Table 4: CNC is the most precise and least complete algorithm, and UMC
// balances precision and recall better than CNC.
func TestFidelityPrecisionRecallShape(t *testing.T) {
	c := sharedCorpus(t)
	d, _ := c.Table4()
	idx := map[string]int{}
	for i, a := range d.Algorithms {
		idx[a] = i
	}
	cnc, umc := idx["CNC"], idx["UMC"]
	for a, i := range idx {
		if a == "CNC" {
			continue
		}
		if d.PrecMean[cnc] < d.PrecMean[i]-1e-9 {
			t.Errorf("CNC precision %.3f below %s's %.3f", d.PrecMean[cnc], a, d.PrecMean[i])
		}
	}
	for a, i := range idx {
		if a == "CNC" || a == "BAH" { // BAH is stochastic; the paper also finds it erratic
			continue
		}
		if d.RecMean[cnc] > d.RecMean[i]+1e-9 {
			t.Errorf("CNC recall %.3f above %s's %.3f", d.RecMean[cnc], a, d.RecMean[i])
		}
	}
	gap := func(i int) float64 { return abs(d.PrecMean[i] - d.RecMean[i]) }
	if gap(umc) > gap(cnc) {
		t.Errorf("UMC P/R gap %.3f exceeds CNC's %.3f; paper finds UMC the most balanced",
			gap(umc), gap(cnc))
	}
}

// The precision-based Nemenyi ranking puts CNC first, as in Figure 7.
func TestFidelityPrecisionRanking(t *testing.T) {
	c := sharedCorpus(t)
	d, _, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r := rankOf(t, d, c, "CNC"); r > 2 {
		t.Errorf("CNC ranks %d on precision, paper puts it first", r)
	}
}

// The recall-based ranking puts UMC and KRC first, as in Figure 8.
func TestFidelityRecallRanking(t *testing.T) {
	c := sharedCorpus(t)
	d, _, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if rU := rankOf(t, d, c, "UMC"); rU > 3 {
		t.Errorf("UMC ranks %d on recall, paper puts it first", rU)
	}
	if rK := rankOf(t, d, c, "KRC"); rK > 3 {
		t.Errorf("KRC ranks %d on recall, paper puts it second", rK)
	}
	if rC := rankOf(t, d, c, "CNC"); rC < 6 {
		t.Errorf("CNC ranks %d on recall, paper puts it last", rC)
	}
}

// Table 8: CNC and RSR use the highest similarity thresholds over
// syntactic weights (which also explains CNC's speed, per QT(2)).
func TestFidelityThresholdOrdering(t *testing.T) {
	c := sharedCorpus(t)
	d, _ := c.Table8()
	idx := map[string]int{}
	for i, a := range c.Algorithms() {
		idx[a] = i
	}
	for _, fam := range []simgraph.Family{simgraph.SBSyn, simgraph.SASyn} {
		desc, ok := d.Desc[fam]
		if !ok {
			continue
		}
		for _, low := range []string{"KRC", "UMC", "EXC"} {
			if desc[idx["CNC"]].Mean < desc[idx[low]].Mean-1e-9 {
				t.Errorf("%s: CNC mean threshold %.3f below %s's %.3f",
					fam, desc[idx["CNC"]].Mean, low, desc[idx[low]].Mean)
			}
			if desc[idx["RSR"]].Mean < desc[idx[low]].Mean-0.05 {
				t.Errorf("%s: RSR mean threshold %.3f clearly below %s's %.3f",
					fam, desc[idx["RSR"]].Mean, low, desc[idx[low]].Mean)
			}
		}
	}
}

// Figure 9: optimal thresholds correlate strongly across algorithms —
// the threshold depends more on the input than on the algorithm.
func TestFidelityThresholdCorrelation(t *testing.T) {
	c := sharedCorpus(t)
	d, _ := c.Fig9()
	corr, ok := d.Corr[simgraph.SASyn]
	if !ok {
		t.Skip("no SA-SYN graphs in corpus")
	}
	sum, n := 0.0, 0
	for i := range corr {
		for j := range corr[i] {
			if i == j {
				continue
			}
			sum += corr[i][j]
			n++
		}
	}
	if avg := sum / float64(n); avg < 0.5 {
		t.Errorf("mean off-diagonal threshold correlation %.2f, paper reports >0.8", avg)
	}
}

// QT(1): BAH is by far the slowest algorithm; CNC is among the fastest.
func TestFidelityRuntimeShape(t *testing.T) {
	c := sharedCorpus(t)
	totals := make([]float64, len(c.Algorithms()))
	for _, gr := range c.Graphs {
		for i, r := range gr.Results {
			totals[i] += float64(r.Runtime)
		}
	}
	idx := map[string]int{}
	for i, a := range c.Algorithms() {
		idx[a] = i
	}
	// Timing at this scale is microsecond-level and noisy, so the
	// assertions are ratio-based rather than strict orderings. Since the
	// corpus-build fast path (cached draw streams and thresholded
	// contribution matrices), BAH's toy-scale margin over the
	// output-sensitive algorithms has narrowed — the paper's "slowest by
	// far" re-emerges at paper scale, where the default caps (10,000
	// steps, 2 minutes) bind — so BAH is required to stay the slowest,
	// with the 2x margin asserted against the rest of the pack rather
	// than the runner-up.
	for a, i := range idx {
		if a == "BAH" || a == "RSR" {
			continue
		}
		if totals[idx["BAH"]] < 2*totals[i] {
			t.Errorf("BAH total runtime not clearly above %s's; paper finds BAH slowest by far", a)
		}
	}
	if totals[idx["BAH"]] < totals[idx["RSR"]] {
		t.Errorf("BAH total runtime below RSR's; paper finds BAH the slowest algorithm")
	}
	if totals[idx["CNC"]] > 2*totals[idx["KRC"]] {
		t.Errorf("CNC much slower than KRC overall; paper finds CNC fastest, KRC slowest of the rest")
	}
	if totals[idx["CNC"]] > 2*totals[idx["RSR"]] {
		t.Errorf("CNC much slower than RSR; paper finds CNC faster")
	}
}
