package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: a titled text table matching
// the rows the paper reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
