package exp

import (
	"context"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/simgraph"
)

// parallelTestConfig keeps the determinism corpus small: one dataset, one
// weight family, capped BAH.
func parallelTestConfig(parallelism int) Config {
	return Config{
		Seed:        42,
		Scale:       0.02,
		Datasets:    []string{"D1"},
		Families:    []simgraph.Family{simgraph.SBSyn},
		BAHSteps:    500,
		BAHTime:     time.Second,
		Parallelism: parallelism,
	}
}

// zeroRuntimes removes the only legitimately nondeterministic fields.
func zeroRuntimes(c *Corpus) {
	for gi := range c.Graphs {
		for ri := range c.Graphs[gi].Results {
			r := &c.Graphs[gi].Results[ri]
			r.Runtime = 0
			for pi := range r.Points {
				r.Points[pi].Runtime = 0
			}
		}
	}
}

// TestBuildCorpusParallelMatchesSerial asserts the parallel grid produces
// the same corpus as the serial one at a fixed seed: same graphs in the
// same order, same sweep results per algorithm.
func TestBuildCorpusParallelMatchesSerial(t *testing.T) {
	serial, err := BuildCorpusCtx(context.Background(), parallelTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildCorpusCtx(context.Background(), parallelTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	zeroRuntimes(serial)
	zeroRuntimes(parallel)

	if len(serial.Graphs) != len(parallel.Graphs) {
		t.Fatalf("graphs: serial %d, parallel %d", len(serial.Graphs), len(parallel.Graphs))
	}
	if serial.DroppedNoisy != parallel.DroppedNoisy || serial.DroppedDupes != parallel.DroppedDupes {
		t.Fatalf("cleaning diverged: serial (%d,%d), parallel (%d,%d)",
			serial.DroppedNoisy, serial.DroppedDupes,
			parallel.DroppedNoisy, parallel.DroppedDupes)
	}
	for gi := range serial.Graphs {
		sg, pg := serial.Graphs[gi], parallel.Graphs[gi]
		if sg.Graph.Name != pg.Graph.Name || sg.Graph.Family != pg.Graph.Family {
			t.Fatalf("graph %d: serial %s/%s, parallel %s/%s",
				gi, sg.Graph.Family, sg.Graph.Name, pg.Graph.Family, pg.Graph.Name)
		}
		for ri := range sg.Results {
			a, b := sg.Results[ri], pg.Results[ri]
			if a.Algorithm != b.Algorithm || a.BestT != b.BestT || a.Best != b.Best {
				t.Fatalf("graph %s alg %s: serial (t=%v %+v), parallel (t=%v %+v)",
					sg.Graph.Name, a.Algorithm, a.BestT, a.Best, b.BestT, b.Best)
			}
			for pi := range a.Points {
				if a.Points[pi] != b.Points[pi] {
					t.Fatalf("graph %s alg %s point %d: serial %+v, parallel %+v",
						sg.Graph.Name, a.Algorithm, pi, a.Points[pi], b.Points[pi])
				}
			}
		}
	}
}

// TestBuildCorpusLegacyDelegates pins that BuildCorpus is the
// background-context special case of BuildCorpusCtx.
func TestBuildCorpusLegacyDelegates(t *testing.T) {
	legacy := BuildCorpus(parallelTestConfig(1))
	ctxed, err := BuildCorpusCtx(context.Background(), parallelTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	zeroRuntimes(legacy)
	zeroRuntimes(ctxed)
	if len(legacy.Graphs) != len(ctxed.Graphs) {
		t.Fatalf("graphs: legacy %d, ctx %d", len(legacy.Graphs), len(ctxed.Graphs))
	}
	for gi := range legacy.Graphs {
		for ri := range legacy.Graphs[gi].Results {
			a := legacy.Graphs[gi].Results[ri]
			b := ctxed.Graphs[gi].Results[ri]
			if a.BestT != b.BestT || a.Best != b.Best {
				t.Fatalf("graph %d alg %s diverged", gi, a.Algorithm)
			}
		}
	}
}

// TestBuildCorpusCtxCanceled asserts a pre-canceled context aborts the
// build with ctx.Err() instead of a corpus.
func TestBuildCorpusCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{1, 4} {
		c, err := BuildCorpusCtx(ctx, parallelTestConfig(parallelism))
		if err == nil || c != nil {
			t.Fatalf("parallelism %d: corpus %v, err %v; want nil, context.Canceled",
				parallelism, c, err)
		}
		if err != context.Canceled {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
		}
	}
}

// TestBuildCorpusCtxBadDataset asserts unknown ids surface as errors from
// the ctx API (and keep panicking from the legacy one).
func TestBuildCorpusCtxBadDataset(t *testing.T) {
	cfg := parallelTestConfig(1)
	cfg.Datasets = []string{"D99"}
	if _, err := BuildCorpusCtx(context.Background(), cfg); err == nil {
		t.Fatal("BuildCorpusCtx accepted unknown dataset id")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BuildCorpus did not panic on unknown dataset id")
		}
	}()
	BuildCorpus(cfg)
}
