// Package exp orchestrates the paper's experimental study end to end:
// it generates the D1-D10 analog tasks, builds the similarity-graph
// corpus over all four weight families, tunes every matching algorithm
// with the threshold sweep, applies the paper's corpus-cleaning rules,
// and exposes one runner per table and figure of the evaluation
// (Section 5-6 and the appendix). Each runner returns structured data and
// renders the same rows/series the paper reports.
package exp

import (
	"context"
	"fmt"
	"time"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/par"
	"github.com/ccer-go/ccer/internal/simgraph"
)

// Config parameterizes a corpus build.
type Config struct {
	// Seed drives dataset generation and BAH.
	Seed int64
	// Scale multiplies the Table 2 dataset sizes (Section 5); values
	// around 0.02-0.05 reproduce the study at laptop scale.
	Scale float64
	// Repeats is the number of timed executions per threshold; the
	// paper's run-time tables use 10.
	Repeats int
	// Datasets selects dataset ids ("D1".."D10"); nil means all ten.
	Datasets []string
	// Families selects weight families; nil means all four.
	Families []simgraph.Family
	// BAHSteps and BAHTime cap the Best Assignment Heuristic; zero
	// means the paper defaults (10,000 steps, 2 minutes). At reduced
	// dataset scale the step cap binds long before the time cap.
	BAHSteps int
	BAHTime  time.Duration
	// SkipClean disables the F-measure-based cleaning rules (noisy and
	// duplicate graph removal), keeping every generated graph.
	SkipClean bool
	// Parallelism is the number of workers the (graph × algorithm) sweep
	// grid fans out over. 1 (or any negative value) runs the grid
	// serially; 0 means runtime.NumCPU(). Results are deterministic and
	// identical to the serial path at any setting, provided BAH's step
	// cap binds before its wall-clock cap (true for the defaults; a
	// binding BAHTime deadline makes BAH timing-dependent even serially).
	// Run-time measurements pick up scheduler noise under parallelism,
	// so use 1 when timing.
	Parallelism int
	// DenseGeneration routes similarity-graph generation through the
	// dense reference path (no candidate pruning); output is byte-
	// identical — it exists for equivalence runs.
	DenseGeneration bool
	// RepCaches, when non-nil, lets repeated corpus builds share the
	// cross-build representation caches (byte-identical output; the
	// caches are pure-function memoization).
	RepCaches *simgraph.RepCaches
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.02
	}
	return c.Scale
}

func (c Config) repeats() int {
	if c.Repeats < 1 {
		return 1
	}
	return c.Repeats
}

func (c Config) datasets() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	ids := make([]string, 0, 10)
	for _, s := range datagen.Specs() {
		ids = append(ids, s.ID)
	}
	return ids
}

// Matchers returns the eight algorithms in paper order, configured per
// the Config.
func (c Config) Matchers() []core.Matcher {
	steps := c.BAHSteps
	if steps <= 0 {
		steps = core.DefaultBAHSteps
	}
	dur := c.BAHTime
	if dur <= 0 {
		dur = core.DefaultBAHDuration
	}
	return []core.Matcher{
		core.CNC{},
		core.RSR{},
		core.RCA{},
		core.BAH{Seed: c.Seed, MaxSteps: steps, MaxDuration: dur},
		core.BMC{Basis: core.BasisAuto},
		core.EXC{},
		core.KRC{},
		core.UMC{},
	}
}

// GraphResult couples one similarity graph with the tuned results of all
// algorithms (indexed in core.Names() order).
type GraphResult struct {
	Graph    simgraph.SimGraph
	Category datagen.Category
	Results  []eval.SweepResult
}

// F1s returns the per-algorithm best F1 row of this graph.
func (gr GraphResult) F1s() []float64 {
	out := make([]float64, len(gr.Results))
	for i, r := range gr.Results {
		out[i] = r.Best.F1
	}
	return out
}

// Corpus is the fully evaluated experimental corpus.
type Corpus struct {
	Config Config
	// Specs and Tasks are keyed by dataset id.
	Specs map[string]datagen.Spec
	Tasks map[string]*dataset.Task
	// Graphs holds the cleaned corpus with per-algorithm sweep results.
	Graphs []GraphResult
	// GenStats aggregates the generation candidate-filter counters
	// (pairs visited vs. provably skipped) across all datasets.
	GenStats simgraph.GenStats
	// Dropped counts graphs removed by each cleaning rule.
	DroppedNoisy, DroppedDupes int
}

// Algorithms returns the algorithm names in result order.
func (c *Corpus) Algorithms() []string { return core.Names() }

// BuildCorpus generates the datasets, the similarity graphs, and the
// tuned results of every algorithm, then applies the paper's cleaning
// rules: graphs whose best F1 across all algorithms is below 0.25 are
// noisy, and near-identical graphs from the same dataset are duplicates.
// It panics on unknown dataset ids (ids come from datagen.Specs or
// validated config); use BuildCorpusCtx for error returns and
// cancellation.
func BuildCorpus(cfg Config) *Corpus {
	corpus, err := BuildCorpusCtx(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	return corpus
}

// sweepUnit is one (graph × algorithm) cell of the experiment grid.
type sweepUnit struct {
	graphIdx, matcherIdx int
	g                    *simgraph.SimGraph
	gt                   *dataset.GroundTruth
}

// BuildCorpusCtx is BuildCorpus with cancellation: it fans the
// (graph × algorithm) sweep grid out over cfg.Parallelism workers and
// stops early (returning ctx.Err()) when the context is canceled.
// Results are deterministic — graphs stay in generation order (datasets
// in config order, similarity functions in taxonomy order) and each
// graph's results stay in core.Names() order — and identical to the
// serial path at a fixed seed.
func BuildCorpusCtx(ctx context.Context, cfg Config) (*Corpus, error) {
	corpus := &Corpus{
		Config: cfg,
		Specs:  map[string]datagen.Spec{},
		Tasks:  map[string]*dataset.Task{},
	}
	matchers := cfg.Matchers()

	// Phase 1: datasets and similarity graphs. Generation fans its row
	// kernels over the same worker budget as the sweep grid; its output
	// is deterministic at any parallelism.
	for _, id := range cfg.datasets() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec, err := datagen.SpecByID(id)
		if err != nil {
			return nil, err
		}
		task := spec.Generate(cfg.Seed, cfg.scale())
		corpus.Specs[id] = spec
		corpus.Tasks[id] = task
		graphs, gstats := simgraph.GenerateStats(task, spec.KeyAttrs,
			simgraph.Options{
				Families:    cfg.Families,
				Parallelism: cfg.Parallelism,
				Dense:       cfg.DenseGeneration,
				Caches:      cfg.RepCaches,
			})
		for _, f := range simgraph.Families() {
			fs := gstats.Of(f)
			corpus.GenStats.Add(f, fs.Visited, fs.Skipped)
		}
		for _, sg := range graphs {
			corpus.Graphs = append(corpus.Graphs, GraphResult{
				Graph:    sg,
				Category: spec.Category,
				Results:  make([]eval.SweepResult, len(matchers)),
			})
		}
	}

	// Phase 2: the sweep grid. Each unit tunes one algorithm on one
	// graph; results land at fixed (graph, matcher) coordinates, so the
	// output order never depends on scheduling.
	units := make([]sweepUnit, 0, len(corpus.Graphs)*len(matchers))
	for gi := range corpus.Graphs {
		gr := &corpus.Graphs[gi]
		gt := corpus.Tasks[gr.Graph.Dataset].GT
		for mi := range matchers {
			units = append(units, sweepUnit{gi, mi, &gr.Graph, gt})
		}
	}
	workers := par.Workers(cfg.Parallelism)
	stop := func() bool { return ctx.Err() != nil }
	par.For(len(units), workers, stop,
		func(_, j int) {
			u := units[j]
			// SweepOpts clones the matcher internally, keeping the
			// stochastic matchers (BAH, QLM) private to one goroutine.
			// Stop is threaded into the sweep so cancellation latency is
			// bounded by one Match call, not a full 20-point sweep; the
			// partial results are discarded below on ctx.Err().
			corpus.Graphs[u.graphIdx].Results[u.matcherIdx] =
				eval.SweepOpts(u.g.G, u.gt, matchers[u.matcherIdx], eval.SweepOptions{
					Repeats:     cfg.repeats(),
					Parallelism: 1,
					Stop:        stop,
				})
		})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if !cfg.SkipClean {
		corpus.clean()
	}
	return corpus, nil
}

// clean applies the noisy-graph and duplicate-graph rules of Section 5.
func (c *Corpus) clean() {
	// Rule: drop graphs where every algorithm scores F1 < 0.25.
	kept := c.Graphs[:0:0]
	for _, gr := range c.Graphs {
		noisy := true
		for _, r := range gr.Results {
			if r.Best.F1 >= 0.25 {
				noisy = false
				break
			}
		}
		if noisy {
			c.DroppedNoisy++
			continue
		}
		kept = append(kept, gr)
	}
	c.Graphs = kept

	// Rule: duplicate inputs — same dataset and edge count, while at
	// least two algorithms share their optimal threshold with nearly
	// identical effectiveness (differences below 0.2%).
	const tol = 0.002
	kept = c.Graphs[:0:0]
	type key struct {
		ds    string
		edges int
	}
	byKey := map[key][]GraphResult{}
	for _, gr := range c.Graphs {
		k := key{gr.Graph.Dataset, gr.Graph.G.NumEdges()}
		dup := false
		for _, prev := range byKey[k] {
			same := 0
			for i := range gr.Results {
				a, b := gr.Results[i], prev.Results[i]
				if a.BestT == b.BestT &&
					abs(a.Best.F1-b.Best.F1) < tol &&
					(abs(a.Best.Precision-b.Best.Precision) < tol ||
						abs(a.Best.Recall-b.Best.Recall) < tol) {
					same++
				}
			}
			if same >= 2 {
				dup = true
				break
			}
		}
		if dup {
			c.DroppedDupes++
			continue
		}
		byKey[k] = append(byKey[k], gr)
		kept = append(kept, gr)
	}
	c.Graphs = kept
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ByFamily groups the corpus graphs by weight family.
func (c *Corpus) ByFamily() map[simgraph.Family][]GraphResult {
	out := map[simgraph.Family][]GraphResult{}
	for _, gr := range c.Graphs {
		out[gr.Graph.Family] = append(out[gr.Graph.Family], gr)
	}
	return out
}

// ByDataset groups the corpus graphs by dataset id.
func (c *Corpus) ByDataset() map[string][]GraphResult {
	out := map[string][]GraphResult{}
	for _, gr := range c.Graphs {
		out[gr.Graph.Dataset] = append(out[gr.Graph.Dataset], gr)
	}
	return out
}

// DatasetIDs returns the dataset ids present in the corpus, in D1..D10
// order.
func (c *Corpus) DatasetIDs() []string {
	present := map[string]bool{}
	for _, gr := range c.Graphs {
		present[gr.Graph.Dataset] = true
	}
	var ids []string
	for _, s := range datagen.Specs() {
		if present[s.ID] {
			ids = append(ids, s.ID)
		}
	}
	return ids
}

// algIndex maps an algorithm name to its column index.
func algIndex(name string) int {
	for i, n := range core.Names() {
		if n == name {
			return i
		}
	}
	return -1
}

// sortedFamilies returns the families present in the corpus in canonical
// order.
func (c *Corpus) sortedFamilies() []simgraph.Family {
	present := map[simgraph.Family]bool{}
	for _, gr := range c.Graphs {
		present[gr.Graph.Family] = true
	}
	var out []simgraph.Family
	for _, f := range simgraph.Families() {
		if present[f] {
			out = append(out, f)
		}
	}
	return out
}

// fmtDur renders a duration the way the paper's Table 6 does:
// milliseconds by default, seconds for long runs.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.0fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
}
