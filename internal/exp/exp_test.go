package exp

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	corpusOnce sync.Once
	testCorpus *Corpus
)

// sharedCorpus builds a small but complete corpus once for all tests:
// three datasets covering the three categories, all four weight families.
func sharedCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		testCorpus = BuildCorpus(Config{
			Seed:     42,
			Scale:    0.02,
			Datasets: []string{"D1", "D2", "D3"},
			BAHSteps: 2000,
			BAHTime:  5 * time.Second,
		})
	})
	return testCorpus
}

func TestBuildCorpusBasics(t *testing.T) {
	c := sharedCorpus(t)
	if len(c.Graphs) == 0 {
		t.Fatal("empty corpus")
	}
	if len(c.Tasks) != 3 || len(c.Specs) != 3 {
		t.Fatalf("tasks/specs = %d/%d, want 3/3", len(c.Tasks), len(c.Specs))
	}
	for _, gr := range c.Graphs {
		if len(gr.Results) != 8 {
			t.Fatalf("%s: %d results, want 8", gr.Graph.Name, len(gr.Results))
		}
		for i, r := range gr.Results {
			if r.Algorithm != c.Algorithms()[i] {
				t.Fatalf("result order broken: %s at %d", r.Algorithm, i)
			}
			if len(r.Points) != 20 {
				t.Fatalf("%s/%s: %d sweep points", gr.Graph.Name, r.Algorithm, len(r.Points))
			}
			if r.Best.F1 < 0 || r.Best.F1 > 1 {
				t.Fatalf("F1 out of range: %v", r.Best.F1)
			}
			if r.BestT < 0.05 || r.BestT > 1.0 {
				t.Fatalf("BestT out of range: %v", r.BestT)
			}
		}
	}
}

func TestCorpusCleaning(t *testing.T) {
	c := sharedCorpus(t)
	// Post-cleaning invariant: every surviving graph has some algorithm
	// with F1 >= 0.25.
	for _, gr := range c.Graphs {
		ok := false
		for _, f1 := range gr.F1s() {
			if f1 >= 0.25 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("noisy graph survived: %s/%s", gr.Graph.Dataset, gr.Graph.Name)
		}
	}
	if c.DroppedNoisy == 0 {
		t.Log("note: no noisy graphs dropped (possible but unusual)")
	}
}

func TestCorpusGroupings(t *testing.T) {
	c := sharedCorpus(t)
	byFam := c.ByFamily()
	total := 0
	for _, graphs := range byFam {
		total += len(graphs)
	}
	if total != len(c.Graphs) {
		t.Fatalf("ByFamily loses graphs: %d != %d", total, len(c.Graphs))
	}
	byDS := c.ByDataset()
	total = 0
	for _, graphs := range byDS {
		total += len(graphs)
	}
	if total != len(c.Graphs) {
		t.Fatalf("ByDataset loses graphs: %d != %d", total, len(c.Graphs))
	}
	ids := c.DatasetIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] && !(ids[i-1] == "D9" && ids[i] == "D10") {
			// String order equals numeric order for D1..D9.
			if ids[i-1] > ids[i] {
				t.Fatalf("DatasetIDs out of order: %v", ids)
			}
		}
	}
}

func TestTable2(t *testing.T) {
	c := sharedCorpus(t)
	tab := c.Table2()
	if len(tab.Rows) != 3 {
		t.Fatalf("Table2 rows = %d, want 3", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "D2") {
		t.Fatal("Table2 render missing D2")
	}
}

func TestTable3(t *testing.T) {
	c := sharedCorpus(t)
	d, tab := c.Table3()
	if len(tab.Rows) == 0 {
		t.Fatal("Table3 empty")
	}
	total := 0
	for _, byFam := range d.Count {
		for _, n := range byFam {
			total += n
		}
	}
	if total != len(c.Graphs) {
		t.Fatalf("Table3 counts %d graphs, corpus has %d", total, len(c.Graphs))
	}
}

func TestTable4(t *testing.T) {
	c := sharedCorpus(t)
	d, tab := c.Table4()
	if len(d.Algorithms) != 8 || len(tab.Rows) != 8 {
		t.Fatalf("Table4 shape wrong: %d algorithms", len(d.Algorithms))
	}
	for i := range d.Algorithms {
		if d.F1Mean[i] < 0 || d.F1Mean[i] > 1 {
			t.Fatalf("F1 mean out of range: %v", d.F1Mean[i])
		}
		// Harmonic mean is at most the max of P and R.
		if d.F1Mean[i] > d.PrecMean[i]+d.RecMean[i] {
			t.Fatalf("impossible metric relation for %s", d.Algorithms[i])
		}
	}
}

func TestTable5(t *testing.T) {
	c := sharedCorpus(t)
	d, tables := c.Table5()
	if len(tables) == 0 {
		t.Fatal("Table5 empty")
	}
	byFam := c.ByFamily()
	for fam, byCat := range d.Stats {
		ovl := byCat["OVL"]
		// In every family, each graph awards at least one Top1 (ties
		// may award several).
		sum := 0
		for _, n := range ovl.Top1 {
			sum += n
		}
		if sum < len(byFam[fam]) {
			t.Fatalf("%s: Top1 total %d < %d graphs", fam, sum, len(byFam[fam]))
		}
	}
}

func TestTable6(t *testing.T) {
	c := sharedCorpus(t)
	d, tables := c.Table6()
	if len(tables) == 0 {
		t.Fatal("Table6 empty")
	}
	for fam, byDS := range d.Mean {
		for ds, means := range byDS {
			for i, mean := range means {
				if mean < 0 {
					t.Fatalf("%s/%s/%s: negative runtime", fam, ds, c.Algorithms()[i])
				}
			}
		}
	}
}

func TestTable7(t *testing.T) {
	c := sharedCorpus(t)
	d, tab := c.Table7()
	// D2 and D3 are in the corpus; both have published numbers.
	if len(d.Datasets) != 2 {
		t.Fatalf("Table7 datasets = %v, want [D2 D3]", d.Datasets)
	}
	for i := range d.Datasets {
		if d.UMC[i] < 0 || d.UMC[i] > 1 {
			t.Fatalf("UMC F1 out of range: %v", d.UMC[i])
		}
		if d.Config[i] == "" {
			t.Fatal("missing winning config")
		}
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("Table7 rows = %d", len(tab.Rows))
	}
}

func TestTable8(t *testing.T) {
	c := sharedCorpus(t)
	d, tables := c.Table8()
	if len(tables) == 0 {
		t.Fatal("Table8 empty")
	}
	for fam, descs := range d.Desc {
		for i, desc := range descs {
			if desc.Mean < 0.05-1e-9 || desc.Mean > 1+1e-9 {
				t.Fatalf("%s/%s: threshold mean %v out of grid", fam, c.Algorithms()[i], desc.Mean)
			}
		}
		for _, r := range d.Corr[fam] {
			if r < -1-1e-9 || r > 1+1e-9 {
				t.Fatalf("correlation out of range: %v", r)
			}
		}
	}
}

func TestTable9(t *testing.T) {
	c := sharedCorpus(t)
	d, tables := c.Table9()
	if len(tables) == 0 {
		t.Fatal("Table9 empty")
	}
	for fam, byDS := range d.Mean {
		for ds, means := range byDS {
			for _, mean := range means {
				if mean < 0.05-1e-9 || mean > 1+1e-9 {
					t.Fatalf("%s/%s: mean threshold %v out of grid", fam, ds, mean)
				}
			}
		}
	}
}

func TestFig2AndNemenyi(t *testing.T) {
	c := sharedCorpus(t)
	d, tab, err := c.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if d.Friedman.K != 8 {
		t.Fatalf("K = %d, want 8", d.Friedman.K)
	}
	if d.Friedman.N != len(c.Graphs) {
		t.Fatalf("N = %d, want %d", d.Friedman.N, len(c.Graphs))
	}
	if d.CD <= 0 {
		t.Fatalf("CD = %v", d.CD)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("Fig2 rows = %d", len(tab.Rows))
	}
	// Mean ranks ordered ascending in the rendered order.
	for i := 1; i < len(d.Order); i++ {
		if d.Friedman.MeanRanks[d.Order[i-1]] > d.Friedman.MeanRanks[d.Order[i]] {
			t.Fatal("Fig2 order not by mean rank")
		}
	}
	if _, _, err := c.Fig7(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Fig8(); err != nil {
		t.Fatal(err)
	}
}

func TestFig3(t *testing.T) {
	c := sharedCorpus(t)
	d, tables := c.Fig3()
	if len(tables) == 0 {
		t.Fatal("Fig3 empty")
	}
	for fam, desc := range d.Desc {
		for m := 0; m < 3; m++ {
			for i, ds := range desc[m] {
				if ds.N == 0 {
					t.Fatalf("%s metric %d alg %s: empty sample", fam, m, c.Algorithms()[i])
				}
			}
		}
	}
}

func TestFig4(t *testing.T) {
	c := sharedCorpus(t)
	d, tables := c.Fig4()
	if len(tables) == 0 {
		t.Fatal("Fig4 empty")
	}
	for fam, series := range d.Points {
		for i, pts := range series {
			for p := 1; p < len(pts); p++ {
				if pts[p][0] < pts[p-1][0] {
					t.Fatalf("%s/%s: series not sorted by edges", fam, c.Algorithms()[i])
				}
			}
		}
	}
}

func TestFig5AndFig10(t *testing.T) {
	c := sharedCorpus(t)
	pts, _ := c.Fig5()
	if len(pts) == 0 {
		t.Fatal("Fig5 empty (D1 in corpus)")
	}
	for _, p := range pts {
		if p.MeanF1 < 0 || p.MeanF1 > 1 || p.MeanRT < 0 {
			t.Fatalf("bad tradeoff point %+v", p)
		}
	}
	byDS, tables := c.Fig10()
	if len(byDS) == 0 || len(tables) == 0 {
		t.Fatal("Fig10 empty")
	}
	for ds, pts := range byDS {
		if ds == "D1" {
			t.Fatal("Fig10 must exclude D1")
		}
		for _, p := range pts {
			if p.Algorithm == "BAH" {
				t.Fatal("Fig10 must exclude BAH")
			}
		}
	}
}

func TestFig9(t *testing.T) {
	c := sharedCorpus(t)
	d, tables := c.Fig9()
	if len(tables) == 0 {
		t.Fatal("Fig9 empty")
	}
	for fam, corr := range d.Corr {
		k := len(corr)
		for i := 0; i < k; i++ {
			if corr[i][i] != 1 {
				t.Fatalf("%s: diagonal not 1", fam)
			}
			for j := 0; j < k; j++ {
				if corr[i][j] != corr[j][i] {
					t.Fatalf("%s: correlation matrix not symmetric", fam)
				}
			}
		}
	}
}

func TestRenderTables(t *testing.T) {
	c := sharedCorpus(t)
	_, t4 := c.Table4()
	out := t4.Render()
	if !strings.Contains(out, "UMC") || !strings.Contains(out, "F1 μ") {
		t.Fatalf("Table4 render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 8 rows.
	if len(lines) != 11 {
		t.Fatalf("Table4 render has %d lines", len(lines))
	}
}

func TestAblationThreshold(t *testing.T) {
	c := sharedCorpus(t)
	d, tab := c.AblationThreshold()
	if len(tab.Rows) != 8 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
	for p := range d.MeanF1 {
		for i, f1 := range d.MeanF1[p] {
			if f1 < 0 || f1 > 1 {
				t.Fatalf("policy %d alg %s: F1 %v", p, d.Algorithms[i], f1)
			}
		}
	}
	// The oracle upper-bounds both label-free policies on every
	// algorithm (it optimizes the same objective).
	for i := range d.Algorithms {
		if d.MeanF1[1][i] > d.MeanF1[0][i]+1e-9 || d.MeanF1[2][i] > d.MeanF1[0][i]+1e-9 {
			t.Fatalf("label-free policy beats the oracle for %s", d.Algorithms[i])
		}
	}
	// The estimator should be competitive: at least 60% of oracle F1 on
	// UMC (in practice it is much closer).
	umc := algIndex("UMC")
	if d.MeanF1[1][umc] < 0.6*d.MeanF1[0][umc] {
		t.Fatalf("estimated threshold recovers only %.0f%% of oracle F1",
			100*d.MeanF1[1][umc]/d.MeanF1[0][umc])
	}
}

func TestAblationBMCBasis(t *testing.T) {
	c := sharedCorpus(t)
	d, tab := c.AblationBMCBasis()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Auto is the max of the two bases per graph, so its mean dominates.
	if d.MeanF1[2] < d.MeanF1[0]-1e-9 || d.MeanF1[2] < d.MeanF1[1]-1e-9 {
		t.Fatalf("BasisAuto mean F1 %v below a fixed basis (%v, %v)",
			d.MeanF1[2], d.MeanF1[0], d.MeanF1[1])
	}
}
