package exp

import (
	"fmt"
	"sort"

	"github.com/ccer-go/ccer/internal/simgraph"
	"github.com/ccer-go/ccer/internal/stats"
)

// NemenyiData holds a critical-difference analysis: the Friedman test and
// the Nemenyi critical distance over the corpus.
type NemenyiData struct {
	Metric   string // "F1", "Precision" or "Recall"
	Friedman stats.FriedmanResult
	CD       float64
	// Order lists algorithm indexes by ascending mean rank (best
	// first).
	Order []int
}

// nemenyi runs the Friedman + Nemenyi analysis on one effectiveness
// metric across every corpus graph.
func (c *Corpus) nemenyi(metric string) (NemenyiData, Table, error) {
	var matrix [][]float64
	for _, gr := range c.Graphs {
		row := make([]float64, len(gr.Results))
		for i, r := range gr.Results {
			switch metric {
			case "Precision":
				row[i] = r.Best.Precision
			case "Recall":
				row[i] = r.Best.Recall
			default:
				row[i] = r.Best.F1
			}
		}
		matrix = append(matrix, row)
	}
	fr, err := stats.Friedman(matrix)
	if err != nil {
		return NemenyiData{}, Table{}, err
	}
	cd, err := stats.NemenyiCD(fr.K, fr.N)
	if err != nil {
		return NemenyiData{}, Table{}, err
	}
	d := NemenyiData{Metric: metric, Friedman: fr, CD: cd}
	d.Order = make([]int, fr.K)
	for i := range d.Order {
		d.Order[i] = i
	}
	sort.Slice(d.Order, func(a, b int) bool {
		return fr.MeanRanks[d.Order[a]] < fr.MeanRanks[d.Order[b]]
	})

	t := Table{
		Title: fmt.Sprintf("Nemenyi diagram data (%s): N=%d graphs, Friedman χ²=%.1f (p=%.2g), CD=%.3f",
			metric, fr.N, fr.ChiSq, fr.PValue, cd),
		Header: []string{"rank", "algorithm", "mean rank", "sig. vs next"},
	}
	algs := c.Algorithms()
	for pos, idx := range d.Order {
		sig := "-"
		if pos+1 < len(d.Order) {
			gap := fr.MeanRanks[d.Order[pos+1]] - fr.MeanRanks[idx]
			if gap > cd {
				sig = "yes"
			} else {
				sig = "no"
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pos + 1), algs[idx], f2(fr.MeanRanks[idx]), sig})
	}
	return d, t, nil
}

// Fig2 runs the critical-difference analysis on F-measure (the paper's
// Figure 2).
func (c *Corpus) Fig2() (NemenyiData, Table, error) { return c.nemenyi("F1") }

// Fig7 runs the analysis on precision (appendix Figure 7).
func (c *Corpus) Fig7() (NemenyiData, Table, error) { return c.nemenyi("Precision") }

// Fig8 runs the analysis on recall (appendix Figure 8).
func (c *Corpus) Fig8() (NemenyiData, Table, error) { return c.nemenyi("Recall") }

// Fig3Data summarizes the effectiveness distributions per weight family,
// the quartile view behind the paper's Figure 3 box plots.
type Fig3Data struct {
	// Desc[family][metric][alg]: metric 0=Precision, 1=Recall, 2=F1.
	Desc map[simgraph.Family][3][]stats.Descriptive
}

// Fig3 reports the distribution of precision, recall and F1 per weight
// family (Figure 3).
func (c *Corpus) Fig3() (Fig3Data, []Table) {
	k := len(c.Algorithms())
	d := Fig3Data{Desc: map[simgraph.Family][3][]stats.Descriptive{}}
	byFam := c.ByFamily()
	var tables []Table
	metricNames := []string{"Precision", "Recall", "F-Measure"}
	for _, fam := range c.sortedFamilies() {
		var samples [3][][]float64
		for m := range samples {
			samples[m] = make([][]float64, k)
		}
		for _, gr := range byFam[fam] {
			for i, r := range gr.Results {
				samples[0][i] = append(samples[0][i], r.Best.Precision)
				samples[1][i] = append(samples[1][i], r.Best.Recall)
				samples[2][i] = append(samples[2][i], r.Best.F1)
			}
		}
		var desc [3][]stats.Descriptive
		for m := range samples {
			desc[m] = make([]stats.Descriptive, k)
			for i := range samples[m] {
				desc[m][i] = stats.Describe(samples[m][i])
			}
		}
		d.Desc[fam] = desc

		for m, name := range metricNames {
			t := Table{
				Title:  fmt.Sprintf("Figure 3 (%s, %s): distribution per algorithm", fam, name),
				Header: []string{"", "mean", "std", "min", "Q1", "median", "Q3", "max"},
			}
			for i, alg := range c.Algorithms() {
				ds := desc[m][i]
				t.Rows = append(t.Rows, []string{alg, f3(ds.Mean), f3(ds.Std),
					f3(ds.Min), f3(ds.Q1), f3(ds.Q2), f3(ds.Q3), f3(ds.Max)})
			}
			tables = append(tables, t)
		}
	}
	return d, tables
}

// Fig4Data holds the scalability series: per algorithm and family, one
// (edges, runtime) point per similarity graph.
type Fig4Data struct {
	// Points[family][alg] is a series of (|E|, runtime ns) pairs sorted
	// by |E|.
	Points map[simgraph.Family][][][2]float64
}

// Fig4 produces the scalability analysis of run-time versus graph size
// (Figure 4). The rendered table buckets graphs by decade of edge count.
func (c *Corpus) Fig4() (Fig4Data, []Table) {
	k := len(c.Algorithms())
	d := Fig4Data{Points: map[simgraph.Family][][][2]float64{}}
	byFam := c.ByFamily()
	var tables []Table
	for _, fam := range c.sortedFamilies() {
		series := make([][][2]float64, k)
		for _, gr := range byFam[fam] {
			edges := float64(gr.Graph.G.NumEdges())
			for i, r := range gr.Results {
				series[i] = append(series[i], [2]float64{edges, float64(r.Runtime)})
			}
		}
		for i := range series {
			sort.Slice(series[i], func(a, b int) bool {
				return series[i][a][0] < series[i][b][0]
			})
		}
		d.Points[fam] = series

		// Bucket by decade of |E| and report the mean runtime per
		// bucket — the "central curve" of the paper's scatter plots.
		t := Table{
			Title:  fmt.Sprintf("Figure 4 (%s): mean run-time by edge-count decade", fam),
			Header: append([]string{"|E| bucket"}, c.Algorithms()...),
		}
		type bucketAgg struct {
			sum   []float64
			count []int
		}
		buckets := map[int]*bucketAgg{}
		for i := range series {
			for _, pt := range series[i] {
				dec := decade(pt[0])
				b, ok := buckets[dec]
				if !ok {
					b = &bucketAgg{sum: make([]float64, k), count: make([]int, k)}
					buckets[dec] = b
				}
				b.sum[i] += pt[1]
				b.count[i]++
			}
		}
		var decs []int
		for dec := range buckets {
			decs = append(decs, dec)
		}
		sort.Ints(decs)
		for _, dec := range decs {
			row := []string{fmt.Sprintf("10^%d", dec)}
			b := buckets[dec]
			for i := 0; i < k; i++ {
				if b.count[i] == 0 {
					row = append(row, "-")
					continue
				}
				row = append(row, fmtDur(durOf(b.sum[i]/float64(b.count[i]))))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return d, tables
}

func decade(x float64) int {
	d := 0
	for x >= 10 {
		x /= 10
		d++
	}
	return d
}

// TradeoffPoint is one point of the F1/run-time trade-off scatter.
type TradeoffPoint struct {
	Algorithm string
	Family    simgraph.Family
	MeanF1    float64
	MeanRT    float64 // nanoseconds
}

// tradeoff computes the macro-average F1 and run-time per algorithm and
// family over the given graphs.
func (c *Corpus) tradeoff(graphs []GraphResult) []TradeoffPoint {
	k := len(c.Algorithms())
	type agg struct {
		f1, rt float64
		n      int
	}
	acc := map[simgraph.Family][]agg{}
	for _, gr := range graphs {
		fam := gr.Graph.Family
		if acc[fam] == nil {
			acc[fam] = make([]agg, k)
		}
		for i, r := range gr.Results {
			acc[fam][i].f1 += r.Best.F1
			acc[fam][i].rt += float64(r.Runtime)
			acc[fam][i].n++
		}
	}
	var out []TradeoffPoint
	for _, fam := range c.sortedFamilies() {
		rows, ok := acc[fam]
		if !ok {
			continue
		}
		for i, a := range rows {
			if a.n == 0 {
				continue
			}
			out = append(out, TradeoffPoint{
				Algorithm: c.Algorithms()[i],
				Family:    fam,
				MeanF1:    a.f1 / float64(a.n),
				MeanRT:    a.rt / float64(a.n),
			})
		}
	}
	return out
}

// Fig5 reports the F1 versus run-time trade-off on D1 (Figure 5).
func (c *Corpus) Fig5() ([]TradeoffPoint, Table) {
	return c.tradeoffTable("D1", "Figure 5: F1/run-time trade-off on D1")
}

// Fig10 reports the trade-off per dataset across D2-D10 (Figure 10),
// excluding BAH as the paper does.
func (c *Corpus) Fig10() (map[string][]TradeoffPoint, []Table) {
	out := map[string][]TradeoffPoint{}
	var tables []Table
	for _, ds := range c.DatasetIDs() {
		if ds == "D1" {
			continue
		}
		pts, t := c.tradeoffTable(ds,
			fmt.Sprintf("Figure 10 (%s): F1/run-time trade-off (BAH excluded)", ds))
		filtered := pts[:0:0]
		var rows [][]string
		for i, p := range pts {
			if p.Algorithm == "BAH" {
				continue
			}
			filtered = append(filtered, p)
			rows = append(rows, t.Rows[i])
		}
		t.Rows = rows
		out[ds] = filtered
		tables = append(tables, t)
	}
	return out, tables
}

func (c *Corpus) tradeoffTable(ds, title string) ([]TradeoffPoint, Table) {
	var graphs []GraphResult
	for _, gr := range c.Graphs {
		if gr.Graph.Dataset == ds {
			graphs = append(graphs, gr)
		}
	}
	pts := c.tradeoff(graphs)
	t := Table{
		Title:  title,
		Header: []string{"algorithm", "family", "mean F1", "mean run-time"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{p.Algorithm, string(p.Family),
			f3(p.MeanF1), fmtDur(durOf(p.MeanRT))})
	}
	return pts, t
}

// Fig9Data holds the pairwise Pearson correlations between algorithms'
// optimal thresholds.
type Fig9Data struct {
	// Corr[family][i][j] is the correlation between algorithms i and j.
	Corr map[simgraph.Family][][]float64
}

// Fig9 reports the Pearson correlation between the per-graph optimal
// thresholds of every algorithm pair (Figure 9).
func (c *Corpus) Fig9() (Fig9Data, []Table) {
	k := len(c.Algorithms())
	d := Fig9Data{Corr: map[simgraph.Family][][]float64{}}
	byFam := c.ByFamily()
	var tables []Table
	for _, fam := range c.sortedFamilies() {
		ts := make([][]float64, k)
		for _, gr := range byFam[fam] {
			for i, r := range gr.Results {
				ts[i] = append(ts[i], r.BestT)
			}
		}
		corr := make([][]float64, k)
		for i := range corr {
			corr[i] = make([]float64, k)
			for j := range corr[i] {
				if i == j {
					corr[i][j] = 1
					continue
				}
				corr[i][j] = stats.Pearson(ts[i], ts[j])
			}
		}
		d.Corr[fam] = corr

		t := Table{
			Title:  fmt.Sprintf("Figure 9 (%s): Pearson correlation between optimal thresholds", fam),
			Header: append([]string{""}, c.Algorithms()...),
		}
		for i, alg := range c.Algorithms() {
			row := []string{alg}
			for j := range corr[i] {
				row = append(row, f2(corr[i][j]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return d, tables
}
