package exp

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/simgraph"
	"github.com/ccer-go/ccer/internal/stats"
)

// Table2 reports the technical characteristics of the generated dataset
// analogs, mirroring the paper's Table 2.
func (c *Corpus) Table2() Table {
	t := Table{
		Title: "Table 2: Technical characteristics of the generated Clean-Clean ER datasets",
		Header: []string{"", "Dataset1", "Dataset2", "|V1|", "|V2|", "NVP1", "NVP2",
			"|A1|", "|A2|", "|p1|", "|p2|", "|D(V1∩V2)|", "|V1xV2|"},
	}
	for _, id := range c.DatasetIDs() {
		spec := c.Specs[id]
		task := c.Tasks[id]
		t.Rows = append(t.Rows, []string{
			id, spec.Name1, spec.Name2,
			fmt.Sprint(task.V1.Len()), fmt.Sprint(task.V2.Len()),
			fmt.Sprint(task.V1.NumValuePairs()), fmt.Sprint(task.V2.NumValuePairs()),
			fmt.Sprint(len(task.V1.AttrSet())), fmt.Sprint(len(task.V2.AttrSet())),
			f2(task.V1.AvgPairs()), f2(task.V2.AvgPairs()),
			fmt.Sprint(task.GT.Len()), fmt.Sprint(task.Comparisons()),
		})
	}
	return t
}

// Table3Data summarizes the corpus per dataset and family.
type Table3Data struct {
	// Count[dataset][family] is |G|; AvgEdges the mean edge count.
	Count    map[string]map[simgraph.Family]int
	AvgEdges map[string]map[simgraph.Family]float64
}

// Table3 reports the number and mean size of the similarity graphs per
// dataset and weight family, mirroring the paper's Table 3.
func (c *Corpus) Table3() (Table3Data, Table) {
	d := Table3Data{
		Count:    map[string]map[simgraph.Family]int{},
		AvgEdges: map[string]map[simgraph.Family]float64{},
	}
	for _, gr := range c.Graphs {
		ds, f := gr.Graph.Dataset, gr.Graph.Family
		if d.Count[ds] == nil {
			d.Count[ds] = map[simgraph.Family]int{}
			d.AvgEdges[ds] = map[simgraph.Family]float64{}
		}
		d.Count[ds][f]++
		d.AvgEdges[ds][f] += float64(gr.Graph.G.NumEdges())
	}
	for ds := range d.AvgEdges {
		for f := range d.AvgEdges[ds] {
			d.AvgEdges[ds][f] /= float64(d.Count[ds][f])
		}
	}

	t := Table{
		Title:  "Table 3: Number of similarity graphs |G| and mean edges |E| per dataset (ratio of |E| to |V1xV2|)",
		Header: []string{""},
	}
	fams := c.sortedFamilies()
	for _, f := range fams {
		t.Header = append(t.Header, string(f)+" |G|", string(f)+" |E| (%)")
	}
	total := map[simgraph.Family]int{}
	for _, ds := range c.DatasetIDs() {
		row := []string{ds}
		cart := float64(c.Tasks[ds].Comparisons())
		for _, f := range fams {
			cnt := d.Count[ds][f]
			total[f] += cnt
			if cnt == 0 {
				row = append(row, "-", "-")
				continue
			}
			avg := d.AvgEdges[ds][f]
			row = append(row, fmt.Sprint(cnt),
				fmt.Sprintf("%.0f (%.1f%%)", avg, 100*avg/cart))
		}
		t.Rows = append(t.Rows, row)
	}
	sum := []string{"Σ"}
	for _, f := range fams {
		sum = append(sum, fmt.Sprint(total[f]), "-")
	}
	t.Rows = append(t.Rows, sum)
	return d, t
}

// Table4Data holds the macro-average effectiveness per algorithm.
type Table4Data struct {
	Algorithms        []string
	PrecMean, PrecStd []float64
	RecMean, RecStd   []float64
	F1Mean, F1Std     []float64
}

// Table4 reports macro-average precision, recall and F1 (μ and σ) across
// all similarity graphs, mirroring the paper's Table 4.
func (c *Corpus) Table4() (Table4Data, Table) {
	algs := c.Algorithms()
	k := len(algs)
	cols := make([][3][]float64, k) // per algorithm: P, R, F1 samples
	for _, gr := range c.Graphs {
		for i, r := range gr.Results {
			cols[i][0] = append(cols[i][0], r.Best.Precision)
			cols[i][1] = append(cols[i][1], r.Best.Recall)
			cols[i][2] = append(cols[i][2], r.Best.F1)
		}
	}
	d := Table4Data{Algorithms: algs}
	t := Table{
		Title:  fmt.Sprintf("Table 4: Macro-average performance across all %d similarity graphs", len(c.Graphs)),
		Header: []string{"", "Prec μ", "Prec σ", "Rec μ", "Rec σ", "F1 μ", "F1 σ"},
	}
	for i, alg := range algs {
		p := stats.Describe(cols[i][0])
		r := stats.Describe(cols[i][1])
		f := stats.Describe(cols[i][2])
		d.PrecMean = append(d.PrecMean, p.Mean)
		d.PrecStd = append(d.PrecStd, p.Std)
		d.RecMean = append(d.RecMean, r.Mean)
		d.RecStd = append(d.RecStd, r.Std)
		d.F1Mean = append(d.F1Mean, f.Mean)
		d.F1Std = append(d.F1Std, f.Std)
		t.Rows = append(t.Rows, []string{alg,
			f3(p.Mean), f3(p.Std), f3(r.Mean), f3(r.Std), f3(f.Mean), f3(f.Std)})
	}
	return d, t
}

// Table5Data holds the #Top1/Δ/#Top2 measures per family and category.
type Table5Data struct {
	// Stats[family][category] holds per-algorithm counters in
	// core.Names() order. The extra category "OVL" aggregates all
	// graphs of the family.
	Stats map[simgraph.Family]map[datagen.Category]eval.TopStats
}

// table5Categories lists the paper's entity-collection categories plus
// the overall aggregate.
var table5Categories = []datagen.Category{
	datagen.Balanced, datagen.OneSided, datagen.Scarce, "OVL",
}

// Table5 reports how often each algorithm achieves the best and
// second-best F1 per weight family and collection category, mirroring the
// paper's Table 5.
func (c *Corpus) Table5() (Table5Data, []Table) {
	d := Table5Data{Stats: map[simgraph.Family]map[datagen.Category]eval.TopStats{}}
	byFam := c.ByFamily()
	for _, fam := range c.sortedFamilies() {
		d.Stats[fam] = map[datagen.Category]eval.TopStats{}
		byCat := map[datagen.Category][][]float64{}
		for _, gr := range byFam[fam] {
			row := gr.F1s()
			byCat[gr.Category] = append(byCat[gr.Category], row)
			byCat["OVL"] = append(byCat["OVL"], row)
		}
		for cat, rows := range byCat {
			d.Stats[fam][cat] = eval.TopCounts(rows)
		}
	}

	var tables []Table
	for _, fam := range c.sortedFamilies() {
		t := Table{
			Title:  fmt.Sprintf("Table 5 (%s): #Top1 / Δ%% / #Top2 per algorithm and category", fam),
			Header: []string{""},
		}
		for _, cat := range table5Categories {
			t.Header = append(t.Header,
				string(cat)+" #T1", string(cat)+" Δ%", string(cat)+" #T2")
		}
		for i, alg := range c.Algorithms() {
			row := []string{alg}
			for _, cat := range table5Categories {
				ts, ok := d.Stats[fam][cat]
				if !ok || len(ts.Top1) == 0 {
					row = append(row, "-", "-", "-")
					continue
				}
				row = append(row, fmt.Sprint(ts.Top1[i]),
					f2(ts.Delta[i]), fmt.Sprint(ts.Top2[i]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return d, tables
}

// Table6Data holds the mean run-time per algorithm, dataset and family.
type Table6Data struct {
	// Mean[family][dataset][alg] in nanoseconds, with the standard
	// deviation in Std.
	Mean map[simgraph.Family]map[string][]float64
	Std  map[simgraph.Family]map[string][]float64
}

// Table6 reports the mean run-time (at each graph's optimal threshold)
// per algorithm, dataset and type of input, mirroring the paper's
// Table 6.
func (c *Corpus) Table6() (Table6Data, []Table) {
	k := len(c.Algorithms())
	d := Table6Data{
		Mean: map[simgraph.Family]map[string][]float64{},
		Std:  map[simgraph.Family]map[string][]float64{},
	}
	samples := map[simgraph.Family]map[string][][]float64{}
	for _, gr := range c.Graphs {
		fam, ds := gr.Graph.Family, gr.Graph.Dataset
		if samples[fam] == nil {
			samples[fam] = map[string][][]float64{}
		}
		if samples[fam][ds] == nil {
			samples[fam][ds] = make([][]float64, k)
		}
		for i, r := range gr.Results {
			samples[fam][ds][i] = append(samples[fam][ds][i], float64(r.Runtime))
		}
	}
	for fam, byDS := range samples {
		d.Mean[fam] = map[string][]float64{}
		d.Std[fam] = map[string][]float64{}
		for ds, cols := range byDS {
			means := make([]float64, k)
			stds := make([]float64, k)
			for i, xs := range cols {
				desc := stats.Describe(xs)
				means[i], stds[i] = desc.Mean, desc.Std
			}
			d.Mean[fam][ds] = means
			d.Std[fam][ds] = stds
		}
	}

	var tables []Table
	for _, fam := range c.sortedFamilies() {
		t := Table{
			Title:  fmt.Sprintf("Table 6 (%s): mean run-time ± std per algorithm and dataset", fam),
			Header: append([]string{""}, c.Algorithms()...),
		}
		for _, ds := range c.DatasetIDs() {
			means, ok := d.Mean[fam][ds]
			if !ok {
				continue
			}
			row := []string{ds}
			for i := range means {
				row = append(row, fmt.Sprintf("%s±%s",
					fmtDur(durOf(means[i])), fmtDur(durOf(d.Std[fam][ds][i]))))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return d, tables
}

func durOf(ns float64) time.Duration { return time.Duration(ns) }

// Table7Data compares UMC against the published ZeroER and DITTO numbers.
type Table7Data struct {
	Datasets []string
	ZeroER   []float64 // published F1, from the paper's Table 7
	DITTO    []float64 // published F1, from the paper's Table 7
	UMC      []float64 // measured: best schema-agnostic TF-IDF cosine configuration
	Config   []string  // the winning representation model and threshold
}

// publishedTable7 holds the F1 scores the paper quotes for ZeroER and
// DITTO on D2-D5.
var publishedTable7 = map[string][2]float64{
	"D2": {0.52, 0.89},
	"D3": {0.48, 0.76},
	"D4": {0.96, 0.99},
	"D5": {0.86, 0.96},
}

// Table7 reproduces the paper's comparison of bipartite matching (UMC
// with cosine similarity over schema-agnostic TF-IDF vectors, best
// representation model) against the published state-of-the-art matching
// results.
func (c *Corpus) Table7() (Table7Data, Table) {
	d := Table7Data{}
	umcIdx := algIndex("UMC")
	for _, ds := range []string{"D2", "D3", "D4", "D5"} {
		pub, ok := publishedTable7[ds]
		if !ok {
			continue
		}
		bestF1, bestCfg := -1.0, ""
		for _, gr := range c.Graphs {
			if gr.Graph.Dataset != ds || gr.Graph.Family != simgraph.SASyn {
				continue
			}
			// Only the TF-IDF cosine bag graphs, per the paper's setup.
			if !hasSuffix(gr.Graph.Name, "/CosineTFIDF") {
				continue
			}
			r := gr.Results[umcIdx]
			if r.Best.F1 > bestF1 {
				bestF1 = r.Best.F1
				bestCfg = fmt.Sprintf("%s, t=%.2f", gr.Graph.Name, r.BestT)
			}
		}
		if bestF1 < 0 {
			continue
		}
		d.Datasets = append(d.Datasets, ds)
		d.ZeroER = append(d.ZeroER, pub[0])
		d.DITTO = append(d.DITTO, pub[1])
		d.UMC = append(d.UMC, bestF1)
		d.Config = append(d.Config, bestCfg)
	}
	t := Table{
		Title:  "Table 7: comparison to published state-of-the-art matchers (ZeroER/DITTO F1 as reported in the paper)",
		Header: []string{"", "ZeroER (paper)", "DITTO (paper)", "UMC (measured)", "config"},
	}
	for i, ds := range d.Datasets {
		t.Rows = append(t.Rows, []string{ds,
			f2(d.ZeroER[i]), f2(d.DITTO[i]), f2(d.UMC[i]), d.Config[i]})
	}
	return d, t
}

func hasSuffix(s, suffix string) bool { return strings.HasSuffix(s, suffix) }

// Table8Data holds the optimal-threshold distribution per algorithm and
// family, plus its correlation with the normalized graph size.
type Table8Data struct {
	// Desc[family][alg] describes the thresholds; Corr[family][alg] is
	// the Pearson correlation ρ(t, |E|/|V1×V2|).
	Desc map[simgraph.Family][]stats.Descriptive
	Corr map[simgraph.Family][]float64
}

// Table8 reports the distribution of optimal similarity thresholds per
// algorithm and type of input, mirroring the paper's Table 8.
func (c *Corpus) Table8() (Table8Data, []Table) {
	k := len(c.Algorithms())
	d := Table8Data{
		Desc: map[simgraph.Family][]stats.Descriptive{},
		Corr: map[simgraph.Family][]float64{},
	}
	byFam := c.ByFamily()
	var tables []Table
	for _, fam := range c.sortedFamilies() {
		ts := make([][]float64, k)
		density := []float64{}
		for _, gr := range byFam[fam] {
			density = append(density, gr.Graph.G.Density())
			for i, r := range gr.Results {
				ts[i] = append(ts[i], r.BestT)
			}
		}
		desc := make([]stats.Descriptive, k)
		corr := make([]float64, k)
		for i := range ts {
			desc[i] = stats.Describe(ts[i])
			corr[i] = stats.Pearson(ts[i], density)
		}
		d.Desc[fam] = desc
		d.Corr[fam] = corr

		t := Table{
			Title:  fmt.Sprintf("Table 8 (%s): distribution of optimal similarity thresholds", fam),
			Header: []string{"", "mean±std", "min", "Q1", "Q2", "Q3", "max", "ρ(t,|E|/|V1×V2|)"},
		}
		for i, alg := range c.Algorithms() {
			t.Rows = append(t.Rows, []string{alg,
				fmt.Sprintf("%s±%s", f2(desc[i].Mean), f2(desc[i].Std)),
				f2(desc[i].Min), f2(desc[i].Q1), f2(desc[i].Q2),
				f2(desc[i].Q3), f2(desc[i].Max), f2(corr[i])})
		}
		tables = append(tables, t)
	}
	return d, tables
}

// Table9Data holds the mean optimal threshold per dataset, algorithm and
// family.
type Table9Data struct {
	// Mean[family][dataset][alg], Std likewise.
	Mean map[simgraph.Family]map[string][]float64
	Std  map[simgraph.Family]map[string][]float64
}

// Table9 reports the average optimal threshold (± std) per algorithm,
// dataset and type of edge weights, mirroring the paper's Table 9.
func (c *Corpus) Table9() (Table9Data, []Table) {
	k := len(c.Algorithms())
	d := Table9Data{
		Mean: map[simgraph.Family]map[string][]float64{},
		Std:  map[simgraph.Family]map[string][]float64{},
	}
	samples := map[simgraph.Family]map[string][][]float64{}
	for _, gr := range c.Graphs {
		fam, ds := gr.Graph.Family, gr.Graph.Dataset
		if samples[fam] == nil {
			samples[fam] = map[string][][]float64{}
		}
		if samples[fam][ds] == nil {
			samples[fam][ds] = make([][]float64, k)
		}
		for i, r := range gr.Results {
			samples[fam][ds][i] = append(samples[fam][ds][i], r.BestT)
		}
	}
	var tables []Table
	for _, fam := range c.sortedFamilies() {
		d.Mean[fam] = map[string][]float64{}
		d.Std[fam] = map[string][]float64{}
		t := Table{
			Title:  fmt.Sprintf("Table 9 (%s): mean optimal threshold ± std per algorithm and dataset", fam),
			Header: append([]string{""}, c.Algorithms()...),
		}
		for _, ds := range c.DatasetIDs() {
			cols, ok := samples[fam][ds]
			if !ok {
				continue
			}
			means := make([]float64, k)
			stds := make([]float64, k)
			row := []string{ds}
			for i, xs := range cols {
				desc := stats.Describe(xs)
				means[i], stds[i] = desc.Mean, desc.Std
				row = append(row, fmt.Sprintf(".%02.0f±.%02.0f", desc.Mean*100, desc.Std*100))
			}
			d.Mean[fam][ds] = means
			d.Std[fam][ds] = stds
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return d, tables
}
