package ccer

import (
	"math/rand"
	"reflect"
	"testing"
)

// apiTestInput builds a reproducible random graph and diagonal ground
// truth for the public concurrent API tests.
func apiTestInput(t testing.TB) (*Graph, *GroundTruth) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	n := 50
	b := NewGraphBuilder(n, n)
	for i := 0; i < 700; i++ {
		b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]int32, n)
	for i := range pairs {
		pairs[i] = [2]int32{int32(i), int32(i)}
	}
	return g, NewGroundTruth(pairs)
}

// allAlgorithmNames is the full matcher surface of the module: the
// paper's eight, the two exact baselines, and the Q-learning extension.
func allAlgorithmNames() []string {
	return append(Algorithms(), "HUN", "AUC", "QLM")
}

// TestSweepAllParallelMatchesSerial asserts the public SweepAll returns
// the same tuning (modulo wall-clock) at any parallelism, fixed seed.
func TestSweepAllParallelMatchesSerial(t *testing.T) {
	g, gt := apiTestInput(t)
	algorithms := allAlgorithmNames()
	serial, err := SweepAll(g, gt, algorithms, Options{Parallelism: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(algorithms) {
		t.Fatalf("results: %d, want %d", len(serial), len(algorithms))
	}
	for _, workers := range []int{2, 8, 0} {
		parallel, err := SweepAll(g, gt, algorithms, Options{Parallelism: workers, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			a, b := serial[i], parallel[i]
			if a.Algorithm != b.Algorithm || a.BestT != b.BestT || a.Best != b.Best {
				t.Fatalf("workers=%d %s: serial (t=%v %+v), parallel (t=%v %+v)",
					workers, a.Algorithm, a.BestT, a.Best, b.BestT, b.Best)
			}
			for j := range a.Points {
				if a.Points[j].T != b.Points[j].T || a.Points[j].Metrics != b.Points[j].Metrics {
					t.Fatalf("workers=%d %s point %d diverged", workers, a.Algorithm, j)
				}
			}
		}
	}
}

// TestMatchConcurrentMatchesMatch asserts MatchConcurrent equals a
// sequence of Match calls, in input order, for every algorithm.
func TestMatchConcurrentMatchesMatch(t *testing.T) {
	g, _ := apiTestInput(t)
	algorithms := allAlgorithmNames()
	for _, workers := range []int{1, 3, 0} {
		results, err := MatchConcurrent(g, algorithms, 0.3, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(algorithms) {
			t.Fatalf("results: %d, want %d", len(results), len(algorithms))
		}
		for i, name := range algorithms {
			if results[i].Algorithm != name {
				t.Fatalf("result %d algorithm %q, want %q", i, results[i].Algorithm, name)
			}
			want, err := Match(g, name, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(results[i].Pairs, want) {
				t.Fatalf("workers=%d %s: concurrent %d pairs != serial %d pairs",
					workers, name, len(results[i].Pairs), len(want))
			}
		}
	}
}

// TestConcurrentAPIUnknownAlgorithm pins the error path.
func TestConcurrentAPIUnknownAlgorithm(t *testing.T) {
	g, gt := apiTestInput(t)
	if _, err := SweepAll(g, gt, []string{"UMC", "NOPE"}, Options{}); err == nil {
		t.Fatal("SweepAll accepted unknown algorithm")
	}
	if _, err := MatchConcurrent(g, []string{"NOPE"}, 0.3, Options{}); err == nil {
		t.Fatal("MatchConcurrent accepted unknown algorithm")
	}
}

// TestNewMatcherQLM pins that the Q-learning matcher is reachable by
// name.
func TestNewMatcherQLM(t *testing.T) {
	m, err := NewMatcher("QLM", 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "QLM" {
		t.Fatalf("Name = %q", m.Name())
	}
}
