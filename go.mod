module github.com/ccer-go/ccer

go 1.24
