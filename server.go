package ccer

// The erserve subsystem: the matching engine as a long-running service.
// The implementation lives in internal/serve; this file re-exports the
// constructor so library users can embed the service in their own
// processes, while cmd/erserve wraps it in a standalone binary.

import "github.com/ccer-go/ccer/internal/serve"

// ServeConfig tunes an embedded matching service (cache capacity, job
// workers, parallelism, body limits, per-route deadlines and admission
// control). The zero value works: requests run under default deadlines
// behind a bounded two-priority admission queue, and identical
// in-flight computations are coalesced; set the MatchTimeout /
// GenerateTimeout / SweepTimeout and AdmissionSlots / AdmissionDepth /
// AdmissionBudget fields to retune or disable the overload behaviour.
type ServeConfig = serve.Config

// Server is a resident Clean-Clean ER matching service: named graphs
// stay warm in a versioned in-memory store, match batches are answered
// through an LRU result cache, and threshold sweeps run as cancellable
// async jobs on a bounded worker pool. Mount Handler on an http.Server
// and Close it on shutdown.
type Server = serve.Server

// NewServer returns a started matching service (its job workers are
// running); the caller owns shutdown via Server.Close. With
// ServeConfig.DataDir set the store is durable: every acknowledged
// mutation is journaled to disk first, and NewServer recovers the
// committed graphs (checksum-verified) before serving. A recovery
// error is returned rather than serving an incomplete store.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }
