// Bibliographic matching: resolve the DBLP-ACM analog (D4) with
// schema-agnostic weights, the setting where the paper finds they shine —
// the bibliographic datasets carry "misplaced value" noise (authors
// spilling into titles) that schema-based similarity cannot see past.
//
// The example also contrasts the greedy 1/2-approximation (UMC) with the
// exact maximum weight matching (Hungarian baseline) to show how little
// matching weight the greedy heuristic loses in practice.
//
// Run with:
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/ccer-go/ccer"
)

func main() {
	if err := run(os.Stdout, 0.04); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, scale float64) error {
	task, err := ccer.GenerateDataset("D4", 11, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "D4 analog: |V1|=%d |V2|=%d true matches=%d\n\n",
		task.V1.Len(), task.V2.Len(), task.GT.Len())

	// Schema-based on title vs schema-agnostic over the whole profile.
	schemaBased, err := ccer.BuildGraph(
		task.V1.AttrTexts("title"), task.V2.AttrTexts("title"),
		ccer.TokenJaccard, 0)
	if err != nil {
		return err
	}
	schemaAgnostic, err := ccer.BuildGraph(
		task.V1.Texts(), task.V2.Texts(), ccer.TokenJaccard, 0)
	if err != nil {
		return err
	}

	for _, cfg := range []struct {
		name string
		g    *ccer.Graph
	}{
		{"schema-based (title)", schemaBased.NormalizeMinMax()},
		{"schema-agnostic (all values)", schemaAgnostic.NormalizeMinMax()},
	} {
		fmt.Fprintln(w, cfg.name)
		for _, alg := range []string{"UMC", "KRC", "EXC", "CNC"} {
			m, err := ccer.NewMatcher(alg, 1)
			if err != nil {
				return err
			}
			res := ccer.SweepThreshold(cfg.g, task.GT, m, 1)
			fmt.Fprintf(w, "  %-4s t=%.2f  P=%.3f R=%.3f F1=%.3f\n",
				alg, res.BestT, res.Best.Precision, res.Best.Recall, res.Best.F1)
		}
		fmt.Fprintln(w)
	}

	// Greedy vs exact maximum weight matching on the schema-agnostic
	// graph: UMC guarantees at least half the optimal weight and in
	// practice comes much closer.
	g := schemaAgnostic.NormalizeMinMax()
	umc, err := ccer.Match(g, "UMC", 0.3)
	if err != nil {
		return err
	}
	hun, err := ccer.Match(g, "HUN", 0.3)
	if err != nil {
		return err
	}
	var wUMC, wHUN float64
	for _, p := range umc {
		wUMC += p.W
	}
	for _, p := range hun {
		wHUN += p.W
	}
	fmt.Fprintf(w, "matching weight: UMC=%.2f, exact (Hungarian)=%.2f (ratio %.3f)\n",
		wUMC, wHUN, wUMC/wHUN)
	return nil
}
