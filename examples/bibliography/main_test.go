package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a tiny scale.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.02); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"schema-based (title)", "schema-agnostic (all values)", "matching weight:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
