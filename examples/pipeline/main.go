// End-to-end CCER pipeline: the three steps of the paper's Section 2 —
// (i) blocking, (ii) matching (similarity scoring of candidates),
// (iii) bipartite graph matching — on the Walmart-Amazon analog (D8), a
// scarce collection where blocking matters because the Cartesian product
// is large and matches are few.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/ccer-go/ccer"
)

func main() {
	if err := run(os.Stdout, 0.02); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, scale float64) error {
	task, err := ccer.GenerateDataset("D8", 13, scale)
	if err != nil {
		return err
	}
	n1, n2 := task.V1.Len(), task.V2.Len()
	fmt.Fprintf(w, "D8 analog: |V1|=%d |V2|=%d true matches=%d (%d possible comparisons)\n\n",
		n1, n2, task.GT.Len(), task.Comparisons())

	// Step (i): token blocking with purging and filtering.
	blocks := ccer.TokenBlocking(task.V1, task.V2)
	blocks = ccer.PurgeBlocks(blocks, task.Comparisons()/10)
	blocks = ccer.FilterBlocks(blocks, 0.5)
	cands := ccer.BlockCandidates(blocks)
	q := ccer.EvaluateBlocking(cands, task.GT, n1, n2)
	fmt.Fprintf(w, "blocking: %d blocks -> %d candidates\n", len(blocks), q.Candidates)
	fmt.Fprintf(w, "          pair completeness %.3f, reduction ratio %.3f\n\n",
		q.PairCompleteness, q.ReductionRatio)

	// Step (ii): score only the candidates.
	texts1 := task.V1.Texts()
	texts2 := task.V2.Texts()
	g, err := ccer.BuildGraphFromCandidates(texts1, texts2, cands, ccer.TokenJaccard, 0)
	if err != nil {
		return err
	}
	g = g.NormalizeMinMax()
	fmt.Fprintf(w, "similarity graph: %d edges (%.2f%% of the Cartesian product)\n\n",
		g.NumEdges(), 100*g.Density())

	// Step (iii): pick the threshold without labels, then match. The
	// paper recommends EXC for scarce collections needing both
	// effectiveness and efficiency; compare it with UMC and the
	// future-work Q-learning matcher.
	t := ccer.EstimateThreshold(g)
	fmt.Fprintf(w, "estimated threshold: %.2f\n\n", t)
	for _, alg := range []string{"EXC", "UMC", "KRC"} {
		pairs, err := ccer.Match(g, alg, t)
		if err != nil {
			return err
		}
		m := ccer.Evaluate(pairs, task.GT)
		fmt.Fprintf(w, "%-4s %3d pairs  P=%.3f R=%.3f F1=%.3f\n",
			alg, len(pairs), m.Precision, m.Recall, m.F1)
	}
	qlm := ccer.NewQLearningMatcher(13)
	pairs := qlm.Match(g, t)
	m := ccer.Evaluate(pairs, task.GT)
	fmt.Fprintf(w, "%-4s %3d pairs  P=%.3f R=%.3f F1=%.3f  (future-work Q-learning matcher)\n",
		qlm.Name(), len(pairs), m.Precision, m.Recall, m.F1)
	return nil
}
