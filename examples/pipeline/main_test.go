package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the full blocking -> scoring -> matching pipeline
// at a tiny scale.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.01); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"blocking:", "similarity graph:", "estimated threshold:", "QLM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
