// Product matching: resolve the Abt-Buy analog (D2) the way the paper's
// evaluation does — generate the dataset, build a schema-based similarity
// graph on the product name, and compare all eight algorithms with tuned
// thresholds. Products are the paper's noisiest domain: titles carry
// typos, dropped tokens and reordered words.
//
// Run with:
//
//	go run ./examples/productmatching
package main

import (
	"fmt"
	"log"

	"github.com/ccer-go/ccer"
)

func main() {
	// The D2 analog at 5% of the paper's scale: two product feeds with
	// every entity matched across sides (a "balanced" collection).
	task, err := ccer.GenerateDataset("D2", 7, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D2 analog: |V1|=%d |V2|=%d true matches=%d\n",
		task.V1.Len(), task.V2.Len(), task.GT.Len())

	// Schema-based graph on the product name with Jaro similarity.
	names1 := task.V1.AttrTexts("name")
	names2 := task.V2.AttrTexts("name")
	g, err := ccer.BuildGraph(names1, names2, ccer.JaroSimilarity, 0)
	if err != nil {
		log.Fatal(err)
	}
	g = g.NormalizeMinMax()
	fmt.Printf("similarity graph: %d edges (density %.1f%%)\n\n",
		g.NumEdges(), 100*g.Density())

	// Tune every algorithm on the paper's threshold grid and report the
	// optimal configuration, as in the paper's Table 4/Table 9.
	fmt.Printf("%-5s %6s %10s %8s %8s %12s\n",
		"alg", "best t", "precision", "recall", "F1", "runtime")
	for _, name := range ccer.Algorithms() {
		m, err := ccer.NewMatcher(name, 7)
		if err != nil {
			log.Fatal(err)
		}
		res := ccer.SweepThreshold(g, task.GT, m, 3)
		fmt.Printf("%-5s %6.2f %10.3f %8.3f %8.3f %12v\n",
			name, res.BestT, res.Best.Precision, res.Best.Recall,
			res.Best.F1, res.Runtime)
	}
}
