// Product matching: resolve the Abt-Buy analog (D2) the way the paper's
// evaluation does — generate the dataset, build a schema-based similarity
// graph on the product name, and compare all eight algorithms with tuned
// thresholds. Products are the paper's noisiest domain: titles carry
// typos, dropped tokens and reordered words.
//
// The tuning uses ccer.SweepAll, which can fan the full
// (algorithm × threshold) grid over all CPUs (Options.Parallelism: 0)
// with results identical to the serial path; the example runs it at
// Parallelism 1 so the reported runtimes stay free of scheduler noise.
//
// Run with:
//
//	go run ./examples/productmatching
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/ccer-go/ccer"
)

func main() {
	if err := run(os.Stdout, 0.05); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, scale float64) error {
	// The D2 analog at 5% of the paper's scale: two product feeds with
	// every entity matched across sides (a "balanced" collection).
	task, err := ccer.GenerateDataset("D2", 7, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "D2 analog: |V1|=%d |V2|=%d true matches=%d\n",
		task.V1.Len(), task.V2.Len(), task.GT.Len())

	// Schema-based graph on the product name with Jaro similarity.
	names1 := task.V1.AttrTexts("name")
	names2 := task.V2.AttrTexts("name")
	g, err := ccer.BuildGraph(names1, names2, ccer.JaroSimilarity, 0)
	if err != nil {
		return err
	}
	g = g.NormalizeMinMax()
	fmt.Fprintf(w, "similarity graph: %d edges (density %.1f%%)\n\n",
		g.NumEdges(), 100*g.Density())

	// Tune every algorithm on the paper's threshold grid and report the
	// optimal configuration, as in Table 4/Table 9. Parallelism 1 keeps
	// the runtime column meaningful; drop it to 0 to fan the grid over
	// all CPUs when clean timings don't matter.
	results, err := ccer.SweepAll(g, task.GT, ccer.Algorithms(),
		ccer.Options{Repeats: 3, Seed: 7, Parallelism: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-5s %6s %10s %8s %8s %12s\n",
		"alg", "best t", "precision", "recall", "F1", "runtime")
	for _, res := range results {
		fmt.Fprintf(w, "%-5s %6.2f %10.3f %8.3f %8.3f %12v\n",
			res.Algorithm, res.BestT, res.Best.Precision, res.Best.Recall,
			res.Best.F1, res.Runtime)
	}
	return nil
}
