package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a tiny scale: the parallel SweepAll
// must tune all eight algorithms.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.02); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, alg := range []string{"CNC", "RSR", "RCA", "BAH", "BMC", "EXC", "KRC", "UMC"} {
		if !strings.Contains(out, alg) {
			t.Fatalf("output missing algorithm %q:\n%s", alg, out)
		}
	}
}
