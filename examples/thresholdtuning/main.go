// Threshold tuning: the paper's Table 8 analysis in miniature. The
// similarity threshold is the single most important configuration
// parameter of every bipartite matching algorithm; this example shows how
// its optimal value moves with the type of edge weights and how strongly
// the optima of different algorithms correlate — which is why tuning one
// algorithm tells you a lot about the others.
//
// Run with:
//
//	go run ./examples/thresholdtuning
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/ccer-go/ccer"
)

func main() {
	if err := run(os.Stdout, 0.04); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, scale float64) error {
	task, err := ccer.GenerateDataset("D3", 5, scale)
	if err != nil {
		return err
	}
	attrs, err := ccer.KeyAttributes("D3")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "D3 analog: |V1|=%d |V2|=%d matches=%d, key attrs %v\n\n",
		task.V1.Len(), task.V2.Len(), task.GT.Len(), attrs)

	// Generate the full corpus of similarity graphs for two families.
	graphs := ccer.GenerateGraphs(task, attrs, []ccer.WeightFamily{
		ccer.WeightFamilies()[0], // schema-based syntactic
		ccer.WeightFamilies()[1], // schema-agnostic syntactic
	})
	fmt.Fprintf(w, "generated %d similarity graphs\n\n", len(graphs))

	// For each family, tune UMC and KRC per graph and track the optimal
	// thresholds and the graph density.
	type sample struct{ t, density float64 }
	byFamily := map[ccer.WeightFamily][]sample{}
	agree := 0
	total := 0
	for _, sg := range graphs {
		results, err := ccer.SweepAll(sg.G, task.GT, []string{"UMC", "KRC"}, ccer.Options{})
		if err != nil {
			return err
		}
		rU, rK := results[0], results[1]
		byFamily[sg.Family] = append(byFamily[sg.Family],
			sample{t: rU.BestT, density: sg.G.Density()})
		total++
		if diff(rU.BestT, rK.BestT) <= 0.10 {
			agree++
		}
	}

	for _, fam := range ccer.WeightFamilies() {
		samples := byFamily[fam]
		if len(samples) == 0 {
			continue
		}
		mean := 0.0
		for _, s := range samples {
			mean += s.t
		}
		mean /= float64(len(samples))
		fmt.Fprintf(w, "%s: %d graphs, mean optimal threshold for UMC = %.2f\n",
			fam, len(samples), mean)
	}
	fmt.Fprintf(w, "\nUMC and KRC optima within 0.10 of each other on %d/%d graphs\n",
		agree, total)
	fmt.Fprintln(w, "(the paper's Figure 9 reports Pearson correlations above 0.8 "+
		"between algorithms' optimal thresholds)")
	return nil
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
