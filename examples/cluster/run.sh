#!/usr/bin/env sh
# Three-backend replicated erserve cluster behind a router, with a
# kill-a-backend demonstration. Run from the repository root:
#
#   sh examples/cluster/run.sh
#
# Ports: backends on 18081-18083, router on 18080. Everything is torn
# down on exit.
set -eu

ROUTER=http://127.0.0.1:18080
B1=http://127.0.0.1:18081
B2=http://127.0.0.1:18082
B3=http://127.0.0.1:18083

BIN=$(mktemp -d)
PIDS=""
cleanup() {
	# shellcheck disable=SC2086
	[ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

# Build once and exec the binary directly: kill -9 must hit the server
# process itself, not a `go run` wrapper that would orphan it.
echo "==> building erserve"
go build -o "$BIN/erserve" ./cmd/erserve

wait_ready() {
	i=0
	until curl -fsS "$1/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "$1 never became ready" >&2; exit 1; }
		sleep 0.1
	done
}

echo "==> starting three backends"
"$BIN/erserve" -addr 127.0.0.1:18081 2>/dev/null & PIDS="$PIDS $!"
"$BIN/erserve" -addr 127.0.0.1:18082 2>/dev/null & PIDS="$PIDS $!"
"$BIN/erserve" -addr 127.0.0.1:18083 2>/dev/null & PIDS="$PIDS $!"
wait_ready $B1; wait_ready $B2; wait_ready $B3

echo "==> starting the router (replicas=2)"
"$BIN/erserve" -addr 127.0.0.1:18080 \
	-route "$B1,$B2,$B3" -replicas 2 -probe-interval 100ms 2>/dev/null &
PIDS="$PIDS $!"
wait_ready $ROUTER

echo "==> generating a graph through the router (fans to 2 replicas)"
curl -fsS $ROUTER/v1/graphs -H 'Content-Type: application/json' \
	-d '{"name":"demo","dataset":"D2","seed":42,"scale":0.02}'
echo

echo "==> matching through the router"
curl -fsS $ROUTER/v1/match \
	-d '{"graph":"demo","algorithms":["UMC"],"threshold":0.5}' | head -c 300
echo; echo

echo "==> cluster state (all healthy)"
curl -fsS $ROUTER/v1/cluster
echo

echo "==> killing one backend mid-service (kill -9)"
# shellcheck disable=SC2086
set -- $PIDS
kill -9 "$1" 2>/dev/null || true

echo "==> matching again: the surviving replica answers"
curl -fsS $ROUTER/v1/match \
	-d '{"graph":"demo","algorithms":["UMC"],"threshold":0.5}' | head -c 300
echo; echo

echo "==> cluster state after the kill (watch the breaker open)"
sleep 1
curl -fsS $ROUTER/v1/cluster
echo
echo "==> done (cluster tears down on exit)"
