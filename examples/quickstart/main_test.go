package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: it must succeed and report
// the three expected matches.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"similarity graph:", "matched", "precision="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
