// Quickstart: resolve two tiny clean collections with Unique Mapping
// Clustering, the paper's best all-round algorithm for balanced inputs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/ccer-go/ccer"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Two clean sources describing restaurants; the first three of each
	// refer to the same real-world places.
	source := []string{
		"golden dragon bistro (415) 555-0132",
		"blue harbor grill (212) 555-0199",
		"old oak tavern (312) 555-0117",
		"the crimson star cafe",
	}
	target := []string{
		"golden dragon bistro 415-555-0132",
		"blue harbour grill 212 555 0199",
		"old oak tavern chicago",
		"midnight garden kitchen",
	}

	// Build the bipartite similarity graph with token Jaccard.
	g, err := ccer.BuildGraph(source, target, ccer.TokenJaccard, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "similarity graph: %d x %d nodes, %d edges\n",
		g.N1(), g.N2(), g.NumEdges())

	// Match with UMC at threshold 0.3: each entity pairs with at most
	// one entity of the other source.
	pairs, err := ccer.Match(g, "UMC", 0.3)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		fmt.Fprintf(w, "matched (%.2f): %q  <->  %q\n", p.W, source[p.U], target[p.V])
	}

	// If a ground truth is known, score the matching.
	gt := ccer.NewGroundTruth([][2]int32{{0, 0}, {1, 1}, {2, 2}})
	m := ccer.Evaluate(pairs, gt)
	fmt.Fprintf(w, "precision=%.2f recall=%.2f F1=%.2f\n", m.Precision, m.Recall, m.F1)
	return nil
}
