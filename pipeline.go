package ccer

// Extended pipeline API: blocking (step (i) of the CCER pipeline),
// unsupervised threshold estimation, and the paper's future-work
// Q-learning matcher.

import (
	"fmt"

	"github.com/ccer-go/ccer/internal/blocking"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/rl"
)

// Block is one blocking bucket of candidate entities from both
// collections.
type Block = blocking.Block

// BlockingQuality reports pair completeness and reduction ratio of a
// candidate set.
type BlockingQuality = blocking.Quality

// TokenBlocking indexes both collections by the tokens of all their
// attribute values and returns the blocks with entities on both sides.
// Every pair sharing at least one token co-occurs in at least one block.
func TokenBlocking(c1, c2 *Collection) []Block {
	return blocking.TokenBlocking(c1, c2)
}

// AttributeBlocking indexes both collections by the tokens of one
// attribute (standard blocking).
func AttributeBlocking(c1, c2 *Collection, attr string) []Block {
	return blocking.AttributeBlocking(c1, c2, attr)
}

// PurgeBlocks drops blocks generating more than maxComparisons
// cross-pairs.
func PurgeBlocks(blocks []Block, maxComparisons int64) []Block {
	return blocking.PurgeBlocks(blocks, maxComparisons)
}

// FilterBlocks retains every entity only in the given ratio of its
// smallest blocks.
func FilterBlocks(blocks []Block, ratio float64) []Block {
	return blocking.FilterBlocks(blocks, ratio)
}

// BlockCandidates deduplicates the cross-pairs of the blocks.
func BlockCandidates(blocks []Block) [][2]int32 { return blocking.Candidates(blocks) }

// MetaBlocking prunes candidate pairs below the average
// common-block-count weight (the WEP scheme).
func MetaBlocking(blocks []Block) [][2]int32 { return blocking.MetaBlocking(blocks) }

// EvaluateBlocking scores a candidate set against the ground truth.
func EvaluateBlocking(cands [][2]int32, gt *GroundTruth, n1, n2 int) BlockingQuality {
	return blocking.Evaluate(cands, gt, n1, n2)
}

// BuildGraphFromCandidates scores only the candidate pairs (from
// blocking) instead of the full Cartesian product. A candidate indexing
// outside either collection (possible when the candidate set was built
// against different collections) is reported as an error.
func BuildGraphFromCandidates(texts1, texts2 []string, cands [][2]int32, sim SimilarityFunc, minSim float64) (*Graph, error) {
	b := graph.NewBuilder(len(texts1), len(texts2))
	for i, c := range cands {
		if c[0] < 0 || int(c[0]) >= len(texts1) || c[1] < 0 || int(c[1]) >= len(texts2) {
			return nil, fmt.Errorf("ccer: candidate %d: pair (%d,%d) out of range for collections of %d and %d texts",
				i, c[0], c[1], len(texts1), len(texts2))
		}
		if w := sim(texts1[c[0]], texts2[c[1]]); w > minSim {
			b.Add(c[0], c[1], w)
		}
	}
	return b.Build()
}

// EstimateThreshold suggests a similarity threshold for a normalized
// graph without ground truth, exploiting the Clean-Clean structure (at
// most min(|V1|,|V2|) edges can be matched). See the paper's Table 8
// analysis for why threshold choice dominates both effectiveness and
// run-time.
func EstimateThreshold(g *Graph) float64 { return eval.EstimateThreshold(g) }

// NewQLearningMatcher returns the Q-learning bipartite matcher that the
// paper cites as future work (Wang et al., ICDE 2019), adapted to static
// CCER: state (|L|,|R|), reward = matched weight, trained on the graph's
// own edge stream without labels.
func NewQLearningMatcher(seed int64) Matcher { return rl.NewQMatcher(seed) }
