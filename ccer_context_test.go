package ccer

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestBuildGraphFromCandidatesBounds(t *testing.T) {
	texts1 := []string{"alpha", "beta"}
	texts2 := []string{"alpha", "gamma"}

	g, err := BuildGraphFromCandidates(texts1, texts2, [][2]int32{{0, 0}, {1, 1}}, JaroSimilarity, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("valid candidates produced no edges")
	}

	bad := [][2]int32{
		{2, 0},  // first index past texts1
		{0, 5},  // second index past texts2
		{-1, 0}, // negative first index
		{0, -3}, // negative second index
	}
	for _, c := range bad {
		_, err := BuildGraphFromCandidates(texts1, texts2, [][2]int32{{0, 0}, c}, JaroSimilarity, 0)
		if err == nil {
			t.Fatalf("candidate %v accepted", c)
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("candidate %v: unexpected error %v", c, err)
		}
	}
}

// contextTestGraph is a small graph for cancellation tests.
func contextTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewGraphBuilder(4, 4)
	for i := int32(0); i < 4; i++ {
		b.Add(i, i, 0.9)
		b.Add(i, (i+1)%4, 0.3)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMatchConcurrentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MatchConcurrent(contextTestGraph(t), Algorithms(), 0.5, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepAllContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gt := NewGroundTruth([][2]int32{{0, 0}, {1, 1}})
	_, err := SweepAll(contextTestGraph(t), gt, []string{"UMC", "CNC"}, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOptionsContextNilAndLive checks the two non-cancelling cases: a
// nil context and a live context behave like the pre-context API.
func TestOptionsContextNilAndLive(t *testing.T) {
	g := contextTestGraph(t)
	gt := NewGroundTruth([][2]int32{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	for _, ctx := range []context.Context{nil, context.Background()} {
		res, err := MatchConcurrent(g, []string{"UMC"}, 0.5, Options{Context: ctx})
		if err != nil || len(res) != 1 || len(res[0].Pairs) != 4 {
			t.Fatalf("ctx %v: MatchConcurrent = %v, %v", ctx, res, err)
		}
		sweeps, err := SweepAll(g, gt, []string{"UMC"}, Options{Context: ctx})
		if err != nil || len(sweeps) != 1 || sweeps[0].Best.F1 != 1 {
			t.Fatalf("ctx %v: SweepAll = %v, %v", ctx, sweeps, err)
		}
	}
}
