package ccer

// Benchmark harness: one benchmark per table and figure of the paper,
// plus per-algorithm matching kernels and the ablation benches called out
// in DESIGN.md. The table/figure benches run their exp runner on a shared
// corpus built once per process; BenchmarkCorpusBuild times the expensive
// corpus construction itself.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// For the full-scale study (all ten datasets, larger scale, 10 timing
// repeats) use cmd/erbench instead.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/exp"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/simgraph"
)

var (
	benchOnce   sync.Once
	benchCorpus *exp.Corpus
)

// benchConfig keeps the bench corpus small: three datasets covering the
// balanced, one-sided and scarce categories over all four weight
// families.
func benchConfig() exp.Config {
	return exp.Config{
		Seed:     42,
		Scale:    0.02,
		Datasets: []string{"D1", "D2", "D3"},
		BAHSteps: 2000,
		BAHTime:  5 * time.Second,
	}
}

func corpus(b *testing.B) *exp.Corpus {
	b.Helper()
	benchOnce.Do(func() { benchCorpus = exp.BuildCorpus(benchConfig()) })
	return benchCorpus
}

// BenchmarkCorpusBuild measures the full pipeline: dataset generation,
// similarity graph corpus, threshold sweeps and cleaning for one dataset.
func BenchmarkCorpusBuild(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"D1"}
	for i := 0; i < b.N; i++ {
		exp.BuildCorpus(cfg)
	}
}

// BenchmarkSimGraphGenerate times similarity-graph generation alone —
// the corpus-build fast path (per-entity representations, candidate
// enumeration, row-parallel kernels) without the threshold sweeps — on
// the same D1 task BenchmarkCorpusBuild starts from.
func BenchmarkSimGraphGenerate(b *testing.B) {
	spec, err := datagen.SpecByID("D1")
	if err != nil {
		b.Fatal(err)
	}
	task := spec.Generate(42, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simgraph.Generate(task, spec.KeyAttrs, simgraph.Options{})
	}
}

// BenchmarkSimGraphGenerateTraced is BenchmarkSimGraphGenerate with a
// live stage trace attached: the instrumented side of the
// observability-overhead comparison (the untraced benchmark above is the
// baseline; spans are per pipeline stage, never per pair, so the two
// should be within noise of each other).
func BenchmarkSimGraphGenerateTraced(b *testing.B) {
	spec, err := datagen.SpecByID("D1")
	if err != nil {
		b.Fatal(err)
	}
	task := spec.Generate(42, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simgraph.Generate(task, spec.KeyAttrs, simgraph.Options{Trace: obs.NewTrace("bench")})
	}
}

// BenchmarkSimGraphGenerateWorkers is BenchmarkSimGraphGenerate across
// worker counts: the many-core scaling run of the row-parallel
// generation kernels (output is byte-identical at any setting, so the
// sub-benchmarks measure pure scheduling behaviour).
func BenchmarkSimGraphGenerateWorkers(b *testing.B) {
	spec, err := datagen.SpecByID("D1")
	if err != nil {
		b.Fatal(err)
	}
	task := spec.Generate(42, 0.02)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simgraph.Generate(task, spec.KeyAttrs, simgraph.Options{Parallelism: workers})
			}
		})
	}
}

// BenchmarkCorpusBuildWorkers is BenchmarkCorpusBuild across worker
// counts (generation + sweeps + cleaning for D1).
func BenchmarkCorpusBuildWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Datasets = []string{"D1"}
			cfg.Parallelism = workers
			for i := 0; i < b.N; i++ {
				exp.BuildCorpus(cfg)
			}
		})
	}
}

func BenchmarkTable2(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Table2()
	}
}

func BenchmarkTable3(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Table3()
	}
}

func BenchmarkTable4(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Table4()
	}
}

func BenchmarkTable5(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Table5()
	}
}

func BenchmarkTable6(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Table6()
	}
}

func BenchmarkTable7(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Table7()
	}
}

func BenchmarkTable8(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Table8()
	}
}

func BenchmarkTable9(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Table9()
	}
}

func BenchmarkFig2(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Fig3()
	}
}

func BenchmarkFig4(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Fig4()
	}
}

func BenchmarkFig5(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Fig5()
	}
}

func BenchmarkFig78(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Fig7(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Fig9()
	}
}

func BenchmarkFig10(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Fig10()
	}
}

// benchGraph builds a random bipartite graph with roughly the requested
// number of edges.
func benchGraph(nodes, edges int) *graph.Bipartite {
	rng := rand.New(rand.NewSource(7))
	bld := graph.NewBuilder(nodes, nodes)
	for i := 0; i < edges; i++ {
		bld.Add(int32(rng.Intn(nodes)), int32(rng.Intn(nodes)), rng.Float64())
	}
	g, err := bld.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// BenchmarkMatcher exercises the raw matching kernels per algorithm and
// graph size — the data behind the complexity discussion of QT(2).
func BenchmarkMatcher(b *testing.B) {
	sizes := []struct {
		nodes, edges int
	}{
		{500, 5_000},
		{2_000, 50_000},
		{5_000, 200_000},
	}
	matchers := []core.Matcher{
		core.CNC{}, core.RSR{}, core.RCA{},
		core.BAH{Seed: 1, MaxSteps: 10000, MaxDuration: 5 * time.Second},
		core.BMC{Basis: core.BasisAuto}, core.EXC{}, core.KRC{}, core.UMC{},
	}
	for _, sz := range sizes {
		g := benchGraph(sz.nodes, sz.edges)
		for _, m := range matchers {
			b.Run(fmt.Sprintf("%s/e%d", m.Name(), sz.edges), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.Match(g, 0.5)
				}
			})
		}
	}
}

// BenchmarkBaselines times the exact baselines for comparison with the
// paper's complexity-based exclusion of the Hungarian algorithm.
func BenchmarkBaselines(b *testing.B) {
	g := benchGraph(500, 5_000)
	for _, m := range []core.Matcher{core.Hungarian{}, core.Auction{}} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Match(g, 0.5)
			}
		})
	}
}

// BenchmarkAblationBMCBasis compares BMC's basis-side options (DESIGN.md
// ablation: the paper tunes this per dataset).
func BenchmarkAblationBMCBasis(b *testing.B) {
	g := benchGraph(2_000, 50_000)
	for _, cfg := range []struct {
		name  string
		basis core.Basis
	}{
		{"V1", core.BasisV1}, {"V2", core.BasisV2}, {"Auto", core.BasisAuto},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			m := core.BMC{Basis: cfg.basis}
			for i := 0; i < b.N; i++ {
				m.Match(g, 0.3)
			}
		})
	}
}

// BenchmarkAblationBAHSteps sweeps BAH's step cap (DESIGN.md ablation).
func BenchmarkAblationBAHSteps(b *testing.B) {
	g := benchGraph(1_000, 20_000)
	for _, steps := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("steps%d", steps), func(b *testing.B) {
			m := core.BAH{Seed: 1, MaxSteps: steps, MaxDuration: time.Minute}
			for i := 0; i < b.N; i++ {
				m.Match(g, 0.3)
			}
		})
	}
}

// BenchmarkAblationThresholdView measures the cost of materializing the
// pruned graph view that CNC/RSR pay and the scan-based algorithms avoid
// (DESIGN.md ablation on the edge-pruning strategy).
func BenchmarkAblationThresholdView(b *testing.B) {
	g := benchGraph(2_000, 50_000)
	for _, t := range []float64{0.25, 0.5, 0.75} {
		b.Run(fmt.Sprintf("t%.2f", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Threshold(t)
			}
		})
	}
}

// benchD2Config is the D2 grid used by the serial-vs-parallel engine
// benchmarks: one dataset, all four weight families, the eight paper
// algorithms.
func benchD2Config(parallelism int) exp.Config {
	cfg := benchConfig()
	cfg.Datasets = []string{"D2"}
	cfg.Parallelism = parallelism
	return cfg
}

// BenchmarkD2GridSerial times the full D2 experiment grid (every
// similarity graph × every algorithm × 20 thresholds) on one worker.
func BenchmarkD2GridSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.BuildCorpus(benchD2Config(1))
	}
}

// BenchmarkD2GridParallel is BenchmarkD2GridSerial on runtime.NumCPU()
// workers. Comparing the two shows the engine's wall-clock speedup; on a
// machine with >=4 cores the parallel grid runs >=2x faster.
func BenchmarkD2GridParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.BuildCorpus(benchD2Config(0))
	}
}

// sweepAllBenchInput builds the inputs for the SweepAll benchmarks: a
// random graph and a synthetic diagonal ground truth.
func sweepAllBenchInput() (*graph.Bipartite, *GroundTruth) {
	g := benchGraph(1_000, 20_000)
	pairs := make([][2]int32, 1_000)
	for i := range pairs {
		pairs[i] = [2]int32{int32(i), int32(i)}
	}
	return g, NewGroundTruth(pairs)
}

func benchSweepAll(b *testing.B, parallelism int) {
	b.Helper()
	g, gt := sweepAllBenchInput()
	algorithms := Algorithms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepAll(g, gt, algorithms, Options{Parallelism: parallelism}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepAllSerial times tuning all eight algorithms on one graph
// with a single worker.
func BenchmarkSweepAllSerial(b *testing.B) { benchSweepAll(b, 1) }

// BenchmarkSweepAllParallel is BenchmarkSweepAllSerial with the
// (algorithm × threshold) grid fanned over all CPUs.
func BenchmarkSweepAllParallel(b *testing.B) { benchSweepAll(b, 0) }

// BenchmarkMatchConcurrent times running all eight algorithms at one
// threshold, serial vs parallel.
func BenchmarkMatchConcurrent(b *testing.B) {
	g := benchGraph(2_000, 50_000)
	algorithms := Algorithms()
	for _, cfg := range []struct {
		name        string
		parallelism int
	}{
		{"Serial", 1}, {"Parallel", 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MatchConcurrent(g, algorithms, 0.5, Options{Parallelism: cfg.parallelism}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweep measures a full 20-point threshold sweep of UMC, the
// unit of work behind every corpus entry.
func BenchmarkSweep(b *testing.B) {
	c := corpus(b)
	task := c.Tasks["D2"]
	var g *graph.Bipartite
	for _, gr := range c.Graphs {
		if gr.Graph.Dataset == "D2" {
			g = gr.Graph.G
			break
		}
	}
	if g == nil {
		b.Fatal("no D2 graph in corpus")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SweepThreshold(g, task.GT, core.UMC{}, 1)
	}
}

// BenchmarkAblationThresholdPolicy runs the threshold-selection ablation
// (oracle vs unsupervised estimate vs fixed) on the shared corpus.
func BenchmarkAblationThresholdPolicy(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.AblationThreshold()
	}
}

// BenchmarkBlocking measures the blocking substrate on a generated
// dataset: token blocking, purging, filtering, candidate extraction.
func BenchmarkBlocking(b *testing.B) {
	task, err := GenerateDataset("D8", 5, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocks := TokenBlocking(task.V1, task.V2)
		blocks = PurgeBlocks(blocks, task.Comparisons()/10)
		blocks = FilterBlocks(blocks, 0.5)
		BlockCandidates(blocks)
	}
}

// BenchmarkEstimateThreshold measures the unsupervised threshold
// estimator.
func BenchmarkEstimateThreshold(b *testing.B) {
	g := benchGraph(2_000, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateThreshold(g)
	}
}

// BenchmarkQLearningMatcher measures the future-work Q-learning matcher
// against the same graph sizes as BenchmarkMatcher.
func BenchmarkQLearningMatcher(b *testing.B) {
	g := benchGraph(2_000, 50_000)
	m := NewQLearningMatcher(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(g, 0.5)
	}
}
