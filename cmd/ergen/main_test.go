package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ccer-go/ccer/internal/dataset"
)

// runWithArgs invokes run() with a fresh flag set and the given argv.
func runWithArgs(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	oldFlags := flag.CommandLine
	defer func() {
		os.Args = oldArgs
		flag.CommandLine = oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("ergen", flag.ContinueOnError)
	os.Args = append([]string{"ergen"}, args...)
	return run()
}

func TestErgenWritesTask(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d1.json")
	if err := runWithArgs(t, "-seed", "3", "-scale", "0.02", "-out", out, "D1"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	task, err := dataset.ReadTaskJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if task.V1.Len() == 0 || task.GT.Len() == 0 {
		t.Fatal("generated task is empty")
	}
}

func TestErgenCPUProfile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d1.json")
	prof := filepath.Join(dir, "cpu.prof")
	if err := runWithArgs(t, "-scale", "0.02", "-out", out, "-cpuprofile", prof, "D1"); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(prof)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if st.Size() == 0 {
		t.Fatal("profile file is empty")
	}
	if err := runWithArgs(t, "-cpuprofile", "/nonexistent-dir/p.prof", "-out", filepath.Join(dir, "x.json"), "D1"); err == nil {
		t.Fatal("unwritable profile path accepted")
	}
}

func TestErgenErrors(t *testing.T) {
	if err := runWithArgs(t); err == nil {
		t.Fatal("missing dataset id accepted")
	}
	if err := runWithArgs(t, "D99"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := runWithArgs(t, "-out", "/nonexistent-dir/x.json", "D1"); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
