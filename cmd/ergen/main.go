// Command ergen generates a synthetic Clean-Clean ER task (an analog of
// one of the paper's ten datasets) and writes it as JSON.
//
// Usage:
//
//	ergen [-seed N] [-scale F] [-out FILE] [-cpuprofile FILE] [-stats] <dataset-id>
//
// Example:
//
//	ergen -seed 7 -scale 0.05 -out d2.json D2
//
// -cpuprofile writes a pprof CPU profile of the generation (the
// counterpart of erserve's -pprof for one-shot runs), so kernel work on
// the data-generation path can be profiled without standing up the
// service.
//
// -stats additionally runs the similarity-graph generation kernels over
// the task and prints, per weight family, the candidate-filter counters
// (kernel blocks visited vs. provably skipped by the lossless zero-score
// filters, and the resulting skip ratio) plus p50/p95/p99 stage timings
// from the generation trace (to stderr; the dataset JSON is unaffected).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/simgraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ergen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 0.05, "scale vs. the paper's Table 2 sizes")
	out := flag.String("out", "", "output file (default stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of generation to this file")
	stats := flag.Bool("stats", false, "run similarity-graph generation and print per-family pairs visited vs. skipped")
	flag.Parse()
	if flag.NArg() != 1 {
		ids := make([]string, 0, 10)
		for _, s := range datagen.Specs() {
			ids = append(ids, s.ID)
		}
		return fmt.Errorf("need exactly one dataset id, one of %v", ids)
	}
	spec, err := datagen.SpecByID(flag.Arg(0))
	if err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	task := spec.Generate(*seed, *scale)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := task.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ergen: %s |V1|=%d |V2|=%d matches=%d (key attrs: %v)\n",
		spec.ID, task.V1.Len(), task.V2.Len(), task.GT.Len(), spec.KeyAttrs)

	if *stats {
		trace := obs.NewTrace("ergen " + spec.ID)
		_, gs := simgraph.GenerateStats(task, spec.KeyAttrs, simgraph.Options{Trace: trace})
		fmt.Fprintf(os.Stderr, "ergen: candidate-filter stats (lossless zero-score pruning):\n")
		for _, f := range simgraph.Families() {
			fs := gs.Of(f)
			fmt.Fprintf(os.Stderr, "ergen:   %-6s visited=%-10d skipped=%-10d skip-ratio=%.3f\n",
				f, fs.Visited, fs.Skipped, fs.SkipRatio())
		}
		total := gs.Total()
		fmt.Fprintf(os.Stderr, "ergen:   total  visited=%-10d skipped=%-10d skip-ratio=%.3f\n",
			total.Visited, total.Skipped, total.SkipRatio())
		printStageTimings(trace)
	}
	return nil
}

// printStageTimings folds the generation trace's stage spans into one
// latency histogram per weight family (the same fixed-bucket histogram
// erserve's /metrics uses) and prints interpolated p50/p95/p99 stage
// estimates, plus the family's total wall time from its top-level span.
func printStageTimings(trace *obs.Trace) {
	view := trace.Snapshot()
	hists := map[string]*obs.Histogram{}
	totals := map[string]time.Duration{}
	for _, sp := range view.Spans {
		fam, ok := strings.CutPrefix(sp.Parent, "generate/")
		if ok {
			h := hists[fam]
			if h == nil {
				h = obs.NewHistogram()
				hists[fam] = h
			}
			h.Observe(time.Duration(sp.DurNS))
		}
		if fam, ok := strings.CutPrefix(sp.Name, "generate/"); ok && sp.Parent == "" {
			totals[fam] += time.Duration(sp.DurNS)
		}
	}
	fmt.Fprintf(os.Stderr, "ergen: generation stage timings (per-family p50/p95/p99 over pipeline stages):\n")
	for _, f := range simgraph.Families() {
		h := hists[string(f)]
		if h == nil {
			continue
		}
		s := h.Snapshot()
		fmt.Fprintf(os.Stderr, "ergen:   %-6s stages=%-4d p50=%-10v p95=%-10v p99=%-10v total=%v\n",
			f, s.Count, s.Quantile(0.50).Round(time.Microsecond),
			s.Quantile(0.95).Round(time.Microsecond),
			s.Quantile(0.99).Round(time.Microsecond),
			totals[string(f)].Round(time.Microsecond))
	}
}
