// Command ermatch runs one bipartite matching algorithm on a task file
// produced by ergen, reporting the matching and its quality.
//
// Usage:
//
//	ermatch [-alg NAME] [-measure NAME] [-attr ATTR] [-t F] [-sweep] <task.json>
//
// The similarity graph is built with the chosen string measure over the
// chosen attribute (or the schema-agnostic profile text if -attr is
// empty). With -sweep, the threshold grid 0.05..1.00 is searched and the
// best configuration is reported; otherwise the matching at -t is
// printed.
//
// Example:
//
//	ergen -out d2.json D2
//	ermatch -alg UMC -measure Jaccard -sweep d2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/strsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ermatch:", err)
		os.Exit(1)
	}
}

func run() error {
	alg := flag.String("alg", "UMC", "algorithm: CNC,RSR,RCA,BAH,BMC,EXC,KRC,UMC,HUN,AUC")
	measure := flag.String("measure", "Jaccard", "string similarity measure")
	attr := flag.String("attr", "", "attribute to compare (default: all values)")
	t := flag.Float64("t", 0.5, "similarity threshold")
	sweep := flag.Bool("sweep", false, "tune the threshold on the grid 0.05..1.00")
	seed := flag.Int64("seed", 1, "seed for the stochastic BAH algorithm")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("need exactly one task file")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	task, err := dataset.ReadTaskJSON(f)
	if err != nil {
		return err
	}

	sim, ok := strsim.AllMeasures()[*measure]
	if !ok {
		names := make([]string, 0, 16)
		for n := range strsim.AllMeasures() {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown measure %q; have %v", *measure, names)
	}
	matcher := core.ByName(*alg, *seed)
	if matcher == nil {
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	var texts1, texts2 []string
	if *attr != "" {
		texts1 = task.V1.AttrTexts(*attr)
		texts2 = task.V2.AttrTexts(*attr)
	} else {
		texts1 = task.V1.Texts()
		texts2 = task.V2.Texts()
	}

	b := graph.NewBuilder(len(texts1), len(texts2))
	for i, s := range texts1 {
		if s == "" {
			continue
		}
		for j, d := range texts2 {
			if d == "" {
				continue
			}
			if w := sim(s, d); w > 0 {
				b.Add(int32(i), int32(j), w)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return err
	}
	g = g.NormalizeMinMax()
	fmt.Printf("graph: |V1|=%d |V2|=%d |E|=%d (density %.1f%%)\n",
		g.N1(), g.N2(), g.NumEdges(), 100*g.Density())

	if *sweep {
		res := eval.Sweep(g, task.GT, matcher, 1)
		fmt.Printf("%s best: t=%.2f precision=%.3f recall=%.3f F1=%.3f (runtime %v)\n",
			res.Algorithm, res.BestT, res.Best.Precision, res.Best.Recall,
			res.Best.F1, res.Runtime)
		return nil
	}

	pairs := matcher.Match(g, *t)
	m := eval.Evaluate(pairs, task.GT)
	fmt.Printf("%s at t=%.2f: %d pairs, precision=%.3f recall=%.3f F1=%.3f\n",
		matcher.Name(), *t, len(pairs), m.Precision, m.Recall, m.F1)
	for _, p := range pairs {
		mark := " "
		if task.GT.IsMatch(p.U, p.V) {
			mark = "*"
		}
		fmt.Printf("%s %-30s  <->  %-30s  (%.3f)\n", mark,
			task.V1.Profiles[p.U].ID, task.V2.Profiles[p.V].ID, p.W)
	}
	return nil
}
