package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ccer-go/ccer/internal/datagen"
)

func writeTask(t *testing.T) string {
	t.Helper()
	spec, err := datagen.SpecByID("D1")
	if err != nil {
		t.Fatal(err)
	}
	task := spec.Generate(3, 0.02)
	path := filepath.Join(t.TempDir(), "task.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := task.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func runWithArgs(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	oldFlags := flag.CommandLine
	defer func() {
		os.Args = oldArgs
		flag.CommandLine = oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("ermatch", flag.ContinueOnError)
	os.Args = append([]string{"ermatch"}, args...)
	return run()
}

func TestErmatchSweep(t *testing.T) {
	path := writeTask(t)
	if err := runWithArgs(t, "-alg", "UMC", "-measure", "Jaccard", "-sweep", path); err != nil {
		t.Fatal(err)
	}
}

func TestErmatchFixedThreshold(t *testing.T) {
	path := writeTask(t)
	if err := runWithArgs(t, "-alg", "EXC", "-measure", "Jaro", "-attr", "name", "-t", "0.6", path); err != nil {
		t.Fatal(err)
	}
}

func TestErmatchErrors(t *testing.T) {
	path := writeTask(t)
	if err := runWithArgs(t); err == nil {
		t.Fatal("missing task file accepted")
	}
	if err := runWithArgs(t, "-alg", "XXX", path); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := runWithArgs(t, "-measure", "XXX", path); err == nil {
		t.Fatal("unknown measure accepted")
	}
	if err := runWithArgs(t, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
