package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/obs/promtest"
)

// runWithArgs invokes run() with the given argv. run() builds its own
// FlagSet, so concurrent instances (router-mode tests start three) are
// safe.
func runWithArgs(args ...string) error {
	return run(args)
}

// freeAddr reserves and releases a loopback port. The tiny window
// between release and reuse is acceptable for a test.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitHealthy blocks until /readyz answers 200. /healthz is not enough
// any more: the listener opens with the boot handler installed (alive
// but not ready) before recovery finishes, so only readiness proves the
// real service handler is in place.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// TestErserveServesAndShutsDownOnSIGINT drives the full binary surface:
// start, generate a graph, match on it, then SIGINT and a clean exit.
func TestErserveServesAndShutsDownOnSIGINT(t *testing.T) {
	addr := freeAddr(t)
	base := "http://" + addr
	done := make(chan error, 1)
	go func() { done <- runWithArgs("-addr", addr) }()
	waitHealthy(t, base)

	body, _ := json.Marshal(map[string]any{"name": "d2", "dataset": "D2", "seed": 42, "scale": 0.02})
	resp, err := http.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}

	body, _ = json.Marshal(map[string]any{"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5})
	resp, err = http.Post(base+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var mr struct {
		Results []struct {
			Pairs []struct{ U, V int32 } `json:"pairs"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.Results) != 1 || len(mr.Results[0].Pairs) == 0 {
		t.Fatalf("match response = %+v", mr)
	}

	// Park a heavy sweep so shutdown exercises in-flight cancellation.
	body, _ = json.Marshal(map[string]any{"graph": "d2", "repeats": 200})
	resp, err = http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() after SIGINT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGINT")
	}
}

// TestErservePrometheusScrapeLive is the CI exposition check against
// the live binary: start erserve, put a generate + match workload
// through it, scrape the Prometheus view twice, and require every line
// to parse, no duplicate families or series, cumulative buckets, and
// counters that never move backwards between the scrapes.
func TestErservePrometheusScrapeLive(t *testing.T) {
	addr := freeAddr(t)
	base := "http://" + addr
	done := make(chan error, 1)
	go func() { done <- runWithArgs("-addr", addr, "-trace-ring", "16") }()
	waitHealthy(t, base)

	post := func(path string, payload map[string]any) {
		t.Helper()
		body, _ := json.Marshal(payload)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}
	scrape := func() *promtest.Scrape {
		t.Helper()
		resp, err := http.Get(base + "/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		s, err := promtest.Parse(string(raw))
		if err != nil {
			t.Fatalf("live exposition does not parse: %v", err)
		}
		return s
	}

	post("/v1/graphs", map[string]any{"name": "d2", "dataset": "D2", "seed": 42, "scale": 0.02})
	post("/v1/match", map[string]any{"graph": "d2", "algorithms": []string{"UMC", "CNC"}, "threshold": 0.5})
	first := scrape()
	for _, fam := range []string{
		"ccer_requests_total", "ccer_http_request_seconds",
		"ccer_match_seconds", "ccer_generate_seconds",
	} {
		if first.Families[fam] == nil {
			t.Errorf("live exposition misses %s", fam)
		}
	}
	post("/v1/match", map[string]any{"graph": "d2", "algorithms": []string{"RSR"}, "threshold": 0.5})
	if err := promtest.CheckMonotonic(first, scrape()); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() after SIGINT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGINT")
	}
}

// TestErserveSIGTERMDrainsUnderLoad: a SIGTERM arriving while closed-
// loop clients hammer /v1/match must still drain cleanly — run()
// returns nil within the drain window, every shed response carries
// Retry-After, and at least one request was actually served.
func TestErserveSIGTERMDrainsUnderLoad(t *testing.T) {
	addr := freeAddr(t)
	base := "http://" + addr
	done := make(chan error, 1)
	go func() {
		done <- runWithArgs("-addr", addr, "-admission-slots", "2",
			"-admission-depth", "4", "-admission-budget", "50ms", "-cache", "-1")
	}()
	waitHealthy(t, base)

	body, _ := json.Marshal(map[string]any{"name": "d2", "dataset": "D2", "seed": 42, "scale": 0.02})
	resp, err := http.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	payload, _ := json.Marshal(map[string]any{"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/match", "application/json", bytes.NewReader(payload))
				if err != nil {
					return // listener is gone; shutdown won the race
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After header")
					}
					shed.Add(1)
				}
			}
		}()
	}
	// Let the stampede build, then pull the plug mid-flight.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() after SIGTERM under load: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain under load")
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no request was served before shutdown")
	}
	t.Logf("drained under load: served=%d shed=%d", served.Load(), shed.Load())
}

func TestErserveErrors(t *testing.T) {
	if err := runWithArgs("unexpected-arg"); err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Fatalf("positional arg accepted: %v", err)
	}
	if err := runWithArgs("-addr", "256.256.256.256:99999"); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestBootHandler pins the pre-recovery surface: alive on /healthz,
// 503 + Retry-After + reason "starting" everywhere else, so health
// checkers keep a recovering node out of rotation without declaring it
// dead.
func TestBootHandler(t *testing.T) {
	h := bootHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("boot /healthz = %d, want 200 (alive)", rec.Code)
	}
	for _, path := range []string{"/readyz", "/v1/match", "/v1/graphs"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("boot %s = %d, want 503", path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("boot %s 503 without Retry-After", path)
		}
		var body struct {
			Reason string `json:"reason"`
			Ready  bool   `json:"ready"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
			t.Fatalf("boot %s body: %v", path, err)
		}
		if body.Reason != "starting" || body.Ready {
			t.Fatalf("boot %s body = %+v, want reason=starting ready=false", path, body)
		}
	}
}

// TestErserveRouterMode drives the full binary surface in cluster
// formation: two backend erserve processes-worth of run() plus a router
// run() fronting them, a write and a read through the router, the
// cluster state endpoint, and a clean SIGINT teardown of all three.
func TestErserveRouterMode(t *testing.T) {
	b1, b2, front := freeAddr(t), freeAddr(t), freeAddr(t)
	done := make(chan error, 3)
	go func() { done <- runWithArgs("-addr", b1) }()
	waitHealthy(t, "http://"+b1)
	go func() { done <- runWithArgs("-addr", b2) }()
	waitHealthy(t, "http://"+b2)
	go func() {
		done <- runWithArgs("-addr", front,
			"-route", "http://"+b1+",http://"+b2,
			"-replicas", "2", "-probe-interval", "50ms")
	}()
	base := "http://" + front
	waitHealthy(t, base)

	body, _ := json.Marshal(map[string]any{"name": "d2", "dataset": "D2", "seed": 42, "scale": 0.02})
	resp, err := http.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate via router: status %d", resp.StatusCode)
	}

	body, _ = json.Marshal(map[string]any{"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5})
	resp, err = http.Post(base+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var mr struct {
		Results []struct {
			Pairs []struct{ U, V int32 } `json:"pairs"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.Results) != 1 || len(mr.Results[0].Pairs) == 0 {
		t.Fatalf("match via router = %+v", mr)
	}

	resp, err = http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs struct {
		Backends []struct {
			URL     string `json:"url"`
			Ready   bool   `json:"ready"`
			Breaker string `json:"breaker"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cs.Backends) != 2 {
		t.Fatalf("cluster state lists %d backends, want 2", len(cs.Backends))
	}
	for _, b := range cs.Backends {
		if !b.Ready || b.Breaker != "closed" {
			t.Fatalf("backend %s not healthy in steady state: %+v", b.URL, cs)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("a run() instance failed after SIGINT: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("cluster did not shut down after SIGINT")
		}
	}
}

// TestErserveAddrInUse covers the listen-before-serve fast failure.
func TestErserveAddrInUse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := runWithArgs("-addr", ln.Addr().String()); err == nil {
		t.Fatal("in-use address accepted")
	} else if !strings.Contains(fmt.Sprint(err), "address already in use") {
		t.Logf("got err %v (platform-specific message, accepted)", err)
	}
}
