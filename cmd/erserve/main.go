// Command erserve runs the resident Clean-Clean ER matching service: an
// HTTP JSON API over the module's matching engine with an in-memory
// graph store, an LRU result cache and an async sweep job queue, so many
// requests amortize one graph build.
//
// Usage:
//
//	erserve [-addr :8080] [-cache N] [-job-workers N] [-queue-depth N]
//	        [-job-history N] [-max-nodes N] [-parallel N]
//	        [-max-body BYTES] [-data-dir DIR] [-compact-every DURATION]
//	        [-trace-slow-ms N] [-access-log] [-trace-ring N]
//	        [-drain DURATION]
//	        [-match-timeout D] [-generate-timeout D] [-sweep-timeout D]
//	        [-admission-slots N] [-admission-depth N] [-admission-budget D]
//	        [-read-header-timeout D] [-read-timeout D] [-write-timeout D]
//	        [-idle-timeout D] [-max-header BYTES]
//
// The service is overload-resilient by default: per-route deadlines
// (504 + reason "deadline" past them), a bounded two-priority admission
// queue over the heavy computations (503 + Retry-After + a machine-
// readable reason beyond its bounds; interactive match traffic wins
// freed slots over bulk generation/sweep work), and coalescing of
// identical in-flight computations. The http.Server itself carries
// header/read/write/idle timeouts, so slow-loris connections cannot pin
// goroutines forever.
//
// With -data-dir the graph store is durable: every acknowledged
// mutation commits to an fsync'd journal over content-addressed
// snapshots before the response is written, and a restart (even after
// kill -9) recovers exactly the committed graphs, verified against
// their checksums.
//
// Endpoints:
//
//	POST   /v1/graphs       upload an edge list, or generate from a
//	                        {"dataset","seed","scale"} JSON request
//	GET    /v1/graphs       list stored graphs
//	GET    /v1/graphs/{g}   graph info (?format=edgelist for the wire form)
//	DELETE /v1/graphs/{g}   drop a graph
//	POST   /v1/match        run a batch of algorithms at one threshold
//	POST   /v1/sweeps       start an async threshold sweep job
//	GET    /v1/sweeps/{id}  poll a job (DELETE cancels it)
//	GET    /v1/traces       recent request traces with stage timings
//	GET    /healthz         liveness (degraded + 503 on a latched
//	                        journal failure)
//	GET    /metrics         flat JSON counters; Prometheus text with
//	                        ?format=prometheus or Accept: text/plain
//
// Every request carries an X-Request-Id and a span trace; requests
// slower than -trace-slow-ms are logged as structured JSON lines with
// their per-stage timings, and -access-log logs every request.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight
// jobs are cancelled through their contexts, and the process waits up to
// -drain for the workers to finish.
//
// Example:
//
//	erserve -addr :8080 &
//	curl -s localhost:8080/v1/graphs -H 'Content-Type: application/json' \
//	     -d '{"name":"d2","dataset":"D2","seed":42,"scale":0.02}'
//	curl -s localhost:8080/v1/match -d '{"graph":"d2","threshold":0.5}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ccer-go/ccer/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 256, "result cache capacity in matchings (negative disables)")
	jobWorkers := flag.Int("job-workers", 2, "async sweep job workers")
	queueDepth := flag.Int("queue-depth", 64, "sweep job backlog before 503s")
	jobHistory := flag.Int("job-history", 256, "finished sweep jobs kept retrievable (oldest evicted beyond)")
	maxNodes := flag.Int("max-nodes", 1<<21, "node cap per graph, uploaded or generated (negative = uncapped)")
	parallel := flag.Int("parallel", 0, "workers inside one match batch or sweep grid (0 = all CPUs)")
	maxBody := flag.Int64("max-body", 32<<20, "request body limit in bytes")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	repcache := flag.Int("repcache", 2, "cross-build representation cache size in resident datasets (negative disables)")
	dataDir := flag.String("data-dir", "", "durable data directory: journal + snapshots; committed graphs survive crashes (empty = in-memory only)")
	compactEvery := flag.Duration("compact-every", 0, "background snapshot/compaction period with -data-dir (0 = 60s, negative disables)")
	traceSlowMS := flag.Int64("trace-slow-ms", 0, "log requests slower than this many milliseconds as structured JSON with stage timings (0 disables)")
	accessLog := flag.Bool("access-log", false, "log one structured JSON line per request")
	traceRing := flag.Int("trace-ring", 64, "recent request traces kept for GET /v1/traces (negative retains none)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	matchTimeout := flag.Duration("match-timeout", 0, "deadline for one POST /v1/match (0 = 30s, negative disables)")
	generateTimeout := flag.Duration("generate-timeout", 0, "deadline for one POST /v1/graphs generation (0 = 2m, negative disables)")
	sweepTimeout := flag.Duration("sweep-timeout", 0, "deadline for one async sweep execution (0 = 10m, negative disables)")
	admissionSlots := flag.Int("admission-slots", 0, "concurrent heavy computations admitted (0 = GOMAXPROCS, negative disables admission control)")
	admissionDepth := flag.Int("admission-depth", 0, "admission queue depth per priority class before queue_full 503s (0 = 128)")
	admissionBudget := flag.Duration("admission-budget", 0, "longest a request waits in the admission queue before a queue_timeout 503 (0 = 2s)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slow-loris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "http.Server ReadTimeout (whole-request read deadline)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "http.Server WriteTimeout (response write deadline; bounds the longest handler)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	maxHeader := flag.Int("max-header", 1<<20, "http.Server MaxHeaderBytes")
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v; see -h", flag.Args())
	}

	srv, err := serve.New(serve.Config{
		CacheSize:        *cache,
		JobWorkers:       *jobWorkers,
		JobQueueDepth:    *queueDepth,
		JobHistory:       *jobHistory,
		MaxGraphNodes:    *maxNodes,
		Parallelism:      *parallel,
		MaxBodyBytes:     *maxBody,
		EnablePprof:      *pprofOn,
		RepCacheDatasets: *repcache,
		DataDir:          *dataDir,
		CompactEvery:     *compactEvery,
		TraceSlow:        time.Duration(*traceSlowMS) * time.Millisecond,
		AccessLog:        *accessLog,
		TraceRing:        *traceRing,
		MatchTimeout:     *matchTimeout,
		GenerateTimeout:  *generateTimeout,
		SweepTimeout:     *sweepTimeout,
		AdmissionSlots:   *admissionSlots,
		AdmissionDepth:   *admissionDepth,
		AdmissionBudget:  *admissionBudget,
	})
	if err != nil {
		return err
	}
	// The connection-level timeouts are the slow-loris guard: a client
	// that trickles its headers or never reads the response is cut off
	// here, before it can pin a goroutine and connection forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeader,
	}

	// Listen before announcing readiness so a bad -addr fails fast.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "erserve: listening on %s (cache=%d job-workers=%d parallel=%d)\n",
		ln.Addr(), *cache, *jobWorkers, *parallel)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener died before any signal
	case <-ctx.Done():
	}
	// Release the signal handler right away: a second Ctrl-C kills the
	// process normally instead of being swallowed.
	stop()
	fmt.Fprintln(os.Stderr, "erserve: shutting down, draining jobs...")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if errors.Is(shutdownErr, context.DeadlineExceeded) {
		shutdownErr = nil // in-flight requests were cut off at the deadline
	}
	if err := srv.Close(drainCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "erserve: bye")
	return shutdownErr
}
