// Command erserve runs the resident Clean-Clean ER matching service: an
// HTTP JSON API over the module's matching engine with an in-memory
// graph store, an LRU result cache and an async sweep job queue, so many
// requests amortize one graph build.
//
// Usage:
//
//	erserve [-addr :8080] [-cache N] [-job-workers N] [-queue-depth N]
//	        [-job-history N] [-max-nodes N] [-parallel N]
//	        [-max-body BYTES] [-data-dir DIR] [-compact-every DURATION]
//	        [-trace-slow-ms N] [-access-log] [-trace-ring N]
//	        [-drain DURATION]
//	        [-match-timeout D] [-generate-timeout D] [-sweep-timeout D]
//	        [-admission-slots N] [-admission-depth N] [-admission-budget D]
//	        [-read-header-timeout D] [-read-timeout D] [-write-timeout D]
//	        [-idle-timeout D] [-max-header BYTES]
//
//	erserve -route URL1,URL2,... [-replicas N] [-probe-interval D]
//	        [-probe-timeout D] [-breaker-threshold N] [-breaker-cooldown D]
//	        [-hedge-after D] [-repair-interval D] [-repair-concurrency N]
//	        [-addr :8080]
//
// The service is overload-resilient by default: per-route deadlines
// (504 + reason "deadline" past them), a bounded two-priority admission
// queue over the heavy computations (503 + Retry-After + a machine-
// readable reason beyond its bounds; interactive match traffic wins
// freed slots over bulk generation/sweep work), and coalescing of
// identical in-flight computations. The http.Server itself carries
// header/read/write/idle timeouts, so slow-loris connections cannot pin
// goroutines forever.
//
// With -data-dir the graph store is durable: every acknowledged
// mutation commits to an fsync'd journal over content-addressed
// snapshots before the response is written, and a restart (even after
// kill -9) recovers exactly the committed graphs, verified against
// their checksums.
//
// With -route the process is a cluster router instead of a node: it
// fronts the listed erserve backends as one replicated service, placing
// each graph on -replicas backends by rendezvous hashing, fanning
// writes to the replica set, reading from any healthy replica (hedging
// a duplicate after -hedge-after, or the observed p95 when unset), and
// health-checking every backend's /readyz into per-backend circuit
// breakers. An anti-entropy repair loop (paced by -repair-interval,
// kicked immediately by write fan misses and backend rejoins) converges
// diverged replicas by streaming the newest copy's edge list, and the
// backend set is live: POST/DELETE /v1/cluster/backends adds or removes
// a node, migrating only the graphs whose rendezvous replica set
// changed. GET /v1/cluster serves the live per-backend state plus the
// repair counters and per-graph divergence.
//
// Endpoints:
//
//	POST   /v1/graphs       upload an edge list, or generate from a
//	                        {"dataset","seed","scale"} JSON request
//	GET    /v1/graphs       list stored graphs
//	GET    /v1/graphs/{g}   graph info (?format=edgelist for the wire form)
//	DELETE /v1/graphs/{g}   drop a graph
//	POST   /v1/match        run a batch of algorithms at one threshold
//	POST   /v1/sweeps       start an async threshold sweep job
//	GET    /v1/sweeps/{id}  poll a job (DELETE cancels it)
//	GET    /v1/traces       recent request traces with stage timings
//	GET    /healthz         liveness (degraded + 503 on a latched
//	                        journal failure)
//	GET    /readyz          readiness: 503 while boot recovery replays
//	                        the journal, during graceful drain, and on a
//	                        latched journal failure
//	GET    /metrics         flat JSON counters; Prometheus text with
//	                        ?format=prometheus or Accept: text/plain
//	GET    /v1/cluster      (router mode) per-backend health, breaker
//	                        state, repair counters and divergence
//	POST   /v1/cluster/backends   (router mode) add a backend {"url":...}
//	DELETE /v1/cluster/backends   (router mode) remove a backend ?url=...
//	POST   /v1/cluster/repair     (router mode) kick an immediate scan
//
// Every request carries an X-Request-Id and a span trace; requests
// slower than -trace-slow-ms are logged as structured JSON lines with
// their per-stage timings, and -access-log logs every request.
//
// SIGINT/SIGTERM shut down gracefully: /readyz flips to 503 so load
// balancers drain the node, the listener stops, in-flight jobs are
// cancelled through their contexts, and the process waits up to -drain
// for the workers to finish.
//
// Example:
//
//	erserve -addr :8080 &
//	curl -s localhost:8080/v1/graphs -H 'Content-Type: application/json' \
//	     -d '{"name":"d2","dataset":"D2","seed":42,"scale":0.02}'
//	curl -s localhost:8080/v1/match -d '{"graph":"d2","threshold":0.5}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/ccer-go/ccer/internal/cluster"
	"github.com/ccer-go/ccer/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(1)
	}
}

// swapHandler is an http.Handler whose target can be swapped
// atomically: the listener opens immediately with the boot handler
// installed, and the real service handler is swapped in once boot-time
// recovery finishes — so /readyz is honest (503 "starting") while the
// journal replays, instead of the port simply not existing.
type swapHandler struct {
	h atomic.Value // http.Handler
}

func newSwapHandler(h http.Handler) *swapHandler {
	sw := &swapHandler{}
	sw.h.Store(&h)
	return sw
}

func (sw *swapHandler) Set(h http.Handler) { sw.h.Store(&h) }

func (sw *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*sw.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// bootHandler answers while the store is still recovering: alive
// (/healthz 200) but not ready — /readyz and every data-plane route
// answer 503 with reason "starting" and a Retry-After, so health
// checkers keep the node out of rotation and well-behaved clients back
// off instead of timing out against a half-recovered store.
func bootHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "starting"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error":  "recovering committed state, not ready",
			"reason": "starting",
			"ready":  false,
		})
	})
	return mux
}

func run(argv []string) error {
	fs := flag.NewFlagSet("erserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cache := fs.Int("cache", 256, "result cache capacity in matchings (negative disables)")
	jobWorkers := fs.Int("job-workers", 2, "async sweep job workers")
	queueDepth := fs.Int("queue-depth", 64, "sweep job backlog before 503s")
	jobHistory := fs.Int("job-history", 256, "finished sweep jobs kept retrievable (oldest evicted beyond)")
	maxNodes := fs.Int("max-nodes", 1<<21, "node cap per graph, uploaded or generated (negative = uncapped)")
	parallel := fs.Int("parallel", 0, "workers inside one match batch or sweep grid (0 = all CPUs)")
	maxBody := fs.Int64("max-body", 32<<20, "request body limit in bytes")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	repcache := fs.Int("repcache", 2, "cross-build representation cache size in resident datasets (negative disables)")
	dataDir := fs.String("data-dir", "", "durable data directory: journal + snapshots; committed graphs survive crashes (empty = in-memory only)")
	compactEvery := fs.Duration("compact-every", 0, "background snapshot/compaction period with -data-dir (0 = 60s, negative disables)")
	traceSlowMS := fs.Int64("trace-slow-ms", 0, "log requests slower than this many milliseconds as structured JSON with stage timings (0 disables)")
	accessLog := fs.Bool("access-log", false, "log one structured JSON line per request")
	traceRing := fs.Int("trace-ring", 64, "recent request traces kept for GET /v1/traces (negative retains none)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain timeout")
	matchTimeout := fs.Duration("match-timeout", 0, "deadline for one POST /v1/match (0 = 30s, negative disables)")
	generateTimeout := fs.Duration("generate-timeout", 0, "deadline for one POST /v1/graphs generation (0 = 2m, negative disables)")
	sweepTimeout := fs.Duration("sweep-timeout", 0, "deadline for one async sweep execution (0 = 10m, negative disables)")
	admissionSlots := fs.Int("admission-slots", 0, "concurrent heavy computations admitted (0 = GOMAXPROCS, negative disables admission control)")
	admissionDepth := fs.Int("admission-depth", 0, "admission queue depth per priority class before queue_full 503s (0 = 128)")
	admissionBudget := fs.Duration("admission-budget", 0, "longest a request waits in the admission queue before a queue_timeout 503 (0 = 2s)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slow-loris guard)")
	readTimeout := fs.Duration("read-timeout", time.Minute, "http.Server ReadTimeout (whole-request read deadline)")
	writeTimeout := fs.Duration("write-timeout", 5*time.Minute, "http.Server WriteTimeout (response write deadline; bounds the longest handler)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	maxHeader := fs.Int("max-header", 1<<20, "http.Server MaxHeaderBytes")
	route := fs.String("route", "", "router mode: comma-separated backend base URLs to front as one replicated cluster")
	replicas := fs.Int("replicas", 2, "(router mode) backends hosting each graph")
	probeInterval := fs.Duration("probe-interval", 0, "(router mode) /readyz probing period (0 = 250ms)")
	probeTimeout := fs.Duration("probe-timeout", 0, "(router mode) single-probe timeout (0 = 1s)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "(router mode) consecutive failures that open a backend's circuit (0 = 3)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "(router mode) open-circuit wait before the half-open trial (0 = 1s)")
	hedgeAfter := fs.Duration("hedge-after", 0, "(router mode) delay before a read is hedged to another replica (0 = adaptive p95)")
	repairInterval := fs.Duration("repair-interval", 0, "(router mode) anti-entropy scan period (0 = 2s, negative disables)")
	repairConcurrency := fs.Int("repair-concurrency", 0, "(router mode) concurrent per-graph repair streams (0 = 4)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v; see -h", fs.Args())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeader,
	}

	if *route != "" {
		rt, err := cluster.NewRouter(cluster.RouterConfig{
			Backends:          strings.Split(*route, ","),
			Replicas:          *replicas,
			ProbeInterval:     *probeInterval,
			ProbeTimeout:      *probeTimeout,
			BreakerThreshold:  *breakerThreshold,
			BreakerCooldown:   *breakerCooldown,
			HedgeAfter:        *hedgeAfter,
			RepairInterval:    *repairInterval,
			RepairConcurrency: *repairConcurrency,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		httpSrv.Handler = rt.Handler()
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "erserve: routing on %s -> %s (replicas=%d)\n",
			ln.Addr(), *route, *replicas)
		return serveUntilSignal(httpSrv, ln, *drain, nil)
	}

	// Listen before recovering so (a) a bad -addr fails fast and (b) the
	// port answers — alive but not ready — while the journal replays.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sw := newSwapHandler(bootHandler())
	httpSrv.Handler = sw
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	srv, err := serve.New(serve.Config{
		CacheSize:        *cache,
		JobWorkers:       *jobWorkers,
		JobQueueDepth:    *queueDepth,
		JobHistory:       *jobHistory,
		MaxGraphNodes:    *maxNodes,
		Parallelism:      *parallel,
		MaxBodyBytes:     *maxBody,
		EnablePprof:      *pprofOn,
		RepCacheDatasets: *repcache,
		DataDir:          *dataDir,
		CompactEvery:     *compactEvery,
		TraceSlow:        time.Duration(*traceSlowMS) * time.Millisecond,
		AccessLog:        *accessLog,
		TraceRing:        *traceRing,
		MatchTimeout:     *matchTimeout,
		GenerateTimeout:  *generateTimeout,
		SweepTimeout:     *sweepTimeout,
		AdmissionSlots:   *admissionSlots,
		AdmissionDepth:   *admissionDepth,
		AdmissionBudget:  *admissionBudget,
	})
	if err != nil {
		_ = httpSrv.Close()
		<-errc
		return err
	}
	sw.Set(srv.Handler())
	fmt.Fprintf(os.Stderr, "erserve: listening on %s (cache=%d job-workers=%d parallel=%d)\n",
		ln.Addr(), *cache, *jobWorkers, *parallel)
	return waitAndDrain(httpSrv, errc, *drain, srv)
}

// serveUntilSignal runs httpSrv on ln until SIGINT/SIGTERM, then drains.
func serveUntilSignal(httpSrv *http.Server, ln net.Listener, drain time.Duration, srv *serve.Server) error {
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	return waitAndDrain(httpSrv, errc, drain, srv)
}

// waitAndDrain blocks until a shutdown signal (or listener death), then
// gracefully drains: readiness flips first so health-checked load
// balancers stop sending traffic, in-flight requests finish under the
// drain budget, and the service closes last.
func waitAndDrain(httpSrv *http.Server, errc chan error, drain time.Duration, srv *serve.Server) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // listener died before any signal
	case <-ctx.Done():
	}
	// Release the signal handler right away: a second Ctrl-C kills the
	// process normally instead of being swallowed.
	stop()
	fmt.Fprintln(os.Stderr, "erserve: shutting down, draining...")
	if srv != nil {
		// Not-ready before not-serving: /readyz answers 503 during the
		// drain window, so routers and load balancers take this node out
		// of rotation while in-flight requests complete.
		srv.BeginDrain()
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if errors.Is(shutdownErr, context.DeadlineExceeded) {
		shutdownErr = nil // in-flight requests were cut off at the deadline
	}
	if srv != nil {
		if err := srv.Close(drainCtx); err != nil {
			return err
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "erserve: bye")
	return shutdownErr
}
