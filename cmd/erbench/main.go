// Command erbench regenerates the paper's tables and figures on the
// synthetic dataset analogs.
//
// Usage:
//
//	erbench [flags] <experiment>
//
// where <experiment> is one of: table2, table3, table4, table5, table6,
// table7, table8, table9, fig2, fig3, fig4, fig5, fig7, fig8, fig9,
// fig10, ablation-threshold, ablation-bmc, or "all".
//
// Flags:
//
//	-seed     int      dataset/BAH seed (default 42)
//	-scale    float    dataset scale vs. the paper's Table 2 sizes (default 0.02)
//	-repeats  int      timed executions per threshold (default 1; the paper uses 10)
//	-datasets string   comma-separated dataset ids (default all of D1..D10)
//	-families string   comma-separated weight families among SB-SYN,SA-SYN,SB-SEM,SA-SEM (default all)
//	-bahsteps int      BAH search-step cap (default 10000)
//	-bahtime  duration BAH run-time cap (default 2m)
//	-parallel int      sweep-grid workers (default 0 = all CPUs; use 1 for paper-grade timings)
//
// Examples:
//
//	erbench -datasets D1,D2,D3 table4
//	erbench -scale 0.05 -repeats 10 -parallel 1 table6
//	erbench all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/ccer-go/ccer/internal/exp"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/simgraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "erbench:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "dataset/BAH seed")
	scale := flag.Float64("scale", 0.02, "dataset scale vs. the paper's sizes")
	repeats := flag.Int("repeats", 1, "timed executions per threshold")
	datasets := flag.String("datasets", "", "comma-separated dataset ids (default all)")
	families := flag.String("families", "", "comma-separated weight families (default all)")
	bahSteps := flag.Int("bahsteps", 10000, "BAH search-step cap")
	bahTime := flag.Duration("bahtime", 2*time.Minute, "BAH run-time cap")
	parallel := flag.Int("parallel", 0,
		"sweep-grid workers (0 = all CPUs, 1 = serial; use 1 for paper-grade timings)")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("need exactly one experiment id (or 'all'); see -h")
	}
	what := strings.ToLower(flag.Arg(0))
	// Validate before the expensive corpus build.
	if what != "all" && !knownExperiment(what) {
		return fmt.Errorf("unknown experiment %q (have %v, all)", what, experimentOrder)
	}

	cfg := exp.Config{
		Seed:        *seed,
		Scale:       *scale,
		Repeats:     *repeats,
		BAHSteps:    *bahSteps,
		BAHTime:     *bahTime,
		Parallelism: *parallel,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *families != "" {
		for _, f := range strings.Split(*families, ",") {
			fam := simgraph.Family(strings.ToUpper(strings.TrimSpace(f)))
			switch fam {
			case simgraph.SBSyn, simgraph.SASyn, simgraph.SBSem, simgraph.SASem:
				cfg.Families = append(cfg.Families, fam)
			default:
				return fmt.Errorf("unknown family %q", f)
			}
		}
	}

	fmt.Fprintf(os.Stderr, "erbench: building corpus (seed=%d scale=%g datasets=%v parallel=%d)...\n",
		cfg.Seed, *scale, cfg.Datasets, *parallel)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	start := time.Now()
	corpus, err := exp.BuildCorpusCtx(ctx, cfg)
	// Release the signal handler right away: a second Ctrl-C (or any
	// interrupt after the build) should kill the process normally
	// instead of being swallowed by the already-canceled context.
	stop()
	if err != nil {
		return fmt.Errorf("corpus build: %w", err)
	}
	fmt.Fprintf(os.Stderr, "erbench: %d graphs (%d noisy + %d duplicates dropped) in %v\n",
		len(corpus.Graphs), corpus.DroppedNoisy, corpus.DroppedDupes,
		time.Since(start).Round(time.Millisecond))
	printFamilyRuntimes(corpus)

	runners := experimentRunners(corpus)
	if what == "all" {
		for _, id := range experimentOrder {
			if err := runners[id](); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println()
		}
		return nil
	}
	return runners[what]()
}

// printFamilyRuntimes folds every per-algorithm matching runtime of the
// corpus sweep into one latency histogram per weight family (the shared
// fixed-bucket type behind erserve's /metrics) and prints interpolated
// p50/p95/p99 estimates, so the families' run-time spread is visible
// before any experiment table is rendered.
func printFamilyRuntimes(c *exp.Corpus) {
	hists := map[simgraph.Family]*obs.Histogram{}
	for _, gr := range c.Graphs {
		h := hists[gr.Graph.Family]
		if h == nil {
			h = obs.NewHistogram()
			hists[gr.Graph.Family] = h
		}
		for _, r := range gr.Results {
			h.Observe(r.Runtime)
		}
	}
	fmt.Fprintf(os.Stderr, "erbench: per-family matching runtimes (p50/p95/p99 over all sweeps):\n")
	for _, f := range simgraph.Families() {
		h := hists[f]
		if h == nil {
			continue
		}
		s := h.Snapshot()
		fmt.Fprintf(os.Stderr, "erbench:   %-6s matchings=%-5d p50=%-10v p95=%-10v p99=%v\n",
			f, s.Count, s.Quantile(0.50).Round(time.Microsecond),
			s.Quantile(0.95).Round(time.Microsecond),
			s.Quantile(0.99).Round(time.Microsecond))
	}
}

func knownExperiment(id string) bool {
	for _, want := range experimentOrder {
		if id == want {
			return true
		}
	}
	return false
}

var experimentOrder = []string{
	"table2", "table3", "table4", "fig2", "fig3", "table5", "table6",
	"fig4", "fig5", "table7", "fig7", "fig8", "table8", "table9",
	"fig9", "fig10", "ablation-threshold", "ablation-bmc",
}

func experimentRunners(c *exp.Corpus) map[string]func() error {
	printTables := func(tables []exp.Table) error {
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		return nil
	}
	return map[string]func() error{
		"table2": func() error { fmt.Println(c.Table2().Render()); return nil },
		"table3": func() error { _, t := c.Table3(); fmt.Println(t.Render()); return nil },
		"table4": func() error { _, t := c.Table4(); fmt.Println(t.Render()); return nil },
		"table5": func() error { _, ts := c.Table5(); return printTables(ts) },
		"table6": func() error { _, ts := c.Table6(); return printTables(ts) },
		"table7": func() error { _, t := c.Table7(); fmt.Println(t.Render()); return nil },
		"table8": func() error { _, ts := c.Table8(); return printTables(ts) },
		"table9": func() error { _, ts := c.Table9(); return printTables(ts) },
		"fig2": func() error {
			_, t, err := c.Fig2()
			if err != nil {
				return err
			}
			fmt.Println(t.Render())
			return nil
		},
		"fig3": func() error { _, ts := c.Fig3(); return printTables(ts) },
		"fig4": func() error { _, ts := c.Fig4(); return printTables(ts) },
		"fig5": func() error { _, t := c.Fig5(); fmt.Println(t.Render()); return nil },
		"fig7": func() error {
			_, t, err := c.Fig7()
			if err != nil {
				return err
			}
			fmt.Println(t.Render())
			return nil
		},
		"fig8": func() error {
			_, t, err := c.Fig8()
			if err != nil {
				return err
			}
			fmt.Println(t.Render())
			return nil
		},
		"fig9":  func() error { _, ts := c.Fig9(); return printTables(ts) },
		"fig10": func() error { _, ts := c.Fig10(); return printTables(ts) },
		"ablation-threshold": func() error {
			_, t := c.AblationThreshold()
			fmt.Println(t.Render())
			return nil
		},
		"ablation-bmc": func() error {
			_, t := c.AblationBMCBasis()
			fmt.Println(t.Render())
			return nil
		},
	}
}
