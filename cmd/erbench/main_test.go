package main

import (
	"flag"
	"os"
	"testing"

	"github.com/ccer-go/ccer/internal/exp"
)

func runWithArgs(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	oldFlags := flag.CommandLine
	defer func() {
		os.Args = oldArgs
		flag.CommandLine = oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("erbench", flag.ContinueOnError)
	os.Args = append([]string{"erbench"}, args...)
	return run()
}

func TestErbenchSingleExperiment(t *testing.T) {
	err := runWithArgs(t, "-datasets", "D1", "-families", "SB-SYN",
		"-bahsteps", "500", "table4")
	if err != nil {
		t.Fatal(err)
	}
}

func TestErbenchErrors(t *testing.T) {
	if err := runWithArgs(t); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if err := runWithArgs(t, "nonsense"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := runWithArgs(t, "-families", "BOGUS", "table4"); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// Every advertised experiment id has a runner, and every runner succeeds
// on a minimal corpus.
func TestErbenchRunnersComplete(t *testing.T) {
	corpus := exp.BuildCorpus(exp.Config{
		Seed:     1,
		Scale:    0.02,
		Datasets: []string{"D1", "D2"},
		BAHSteps: 500,
	})
	runners := experimentRunners(corpus)
	for _, id := range experimentOrder {
		runner, ok := runners[id]
		if !ok {
			t.Fatalf("experiment %q has no runner", id)
		}
		if err := runner(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	for id := range runners {
		found := false
		for _, want := range experimentOrder {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("runner %q not in experimentOrder", id)
		}
	}
}
